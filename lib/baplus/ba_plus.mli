(** Π_BA+ (Section 7, Theorem 6): Byzantine Agreement for short (κ-bit)
    values with two extra properties needed by the CA construction:

    - {b Intrusion Tolerance} (Definition 3): the common output is an honest
      party's input or ⊥ — byzantine parties cannot smuggle in a value of
      their own.
    - {b Bounded Pre-Agreement} (Definition 4): the output is ⊥ only if fewer
      than [n − 2t] honest parties share the same input.

    Communication: O(κn²) for the two exchange rounds plus at most four
    invocations of the assumed Π_BA (two on κ-bit values, two on bits).

    The intended inputs are κ-bit hash digests, but any byte values work. *)

module Make (B : Ba.Substrate.S) : sig
  val run : Net.Ctx.t -> string -> string option Net.Proto.t
  (** [run ctx v] joins Π_BA+ with input [v]; [None] is the paper's ⊥.  The
      four inner agreement instances run on the substrate [B]. *)

  val cost_estimate :
    Net.Ctx.t -> value_bits:int -> f:int -> Ba.Substrate.cost
  (** f-sensitive cost model for one Π_BA+ instance: the two value exchanges
      plus two option and two bit instances of [B]'s own {!Ba.Substrate.S.cost}
      — so a fault-adaptive substrate's early stopping propagates through the
      functor seam.  A planning model, not an accounting identity. *)
end

include module type of Make (Ba.Substrate.Unauthenticated)
(** The default instantiation over {!Ba.Substrate.Unauthenticated} — the
    historical hard-wired phase-king stack, bit-identical to the pre-seam
    protocol. *)
