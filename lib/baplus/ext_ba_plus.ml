open Net

let ( let* ) = Proto.( let* )

let encode_tuple ~index ~codeword ~witness =
  Wire.(
    encode
      (seq [ w_varint index; w_bytes codeword; w_bytes (Merkle.encode_witness witness) ]))

let decode_tuple raw =
  let open Wire in
  decode_full
    (fun cur ->
      let* index = r_varint cur in
      let* codeword = r_bytes () cur in
      let* witness_raw = r_bytes () cur in
      let* witness = Merkle.decode_witness witness_raw in
      Some (index, codeword, witness))
    raw

(* Collect verified codewords for root [z_star] from an inbox: at most one
   per index (collision resistance makes duplicates consistent anyway).
   Stores [index -> (codeword, raw_tuple)] so a tuple can be republished
   verbatim. *)
let harvest ~n ~z_star ~into inbox =
  Array.iter
    (function
      | None -> ()
      | Some raw -> (
          match decode_tuple raw with
          | None -> ()
          | Some (index, codeword, witness) ->
              if
                index >= 0 && index < n
                && (not (Hashtbl.mem into index))
                && Merkle.verify ~root:z_star ~index ~value:codeword witness
              then Hashtbl.add into index (codeword, raw)))
    inbox

let run (ctx : Ctx.t) input =
  let n = ctx.Ctx.n in
  let k = Ctx.quorum ctx in
  (* One memoized codec context per (n, k) serves every FINDPREFIX iteration
     and every concurrent session at these parameters. *)
  let codec = Reed_solomon.ctx ~n ~k in
  (* Step 1: erasure-code the input and commit to the codewords. *)
  let codewords = Reed_solomon.encode_with codec input in
  let tree = Merkle.build codewords in
  let z = Merkle.root tree in
  (* Step 2: agree on a root. *)
  let* z_agreed = Ba_plus.run ctx z in
  match z_agreed with
  | None -> Proto.return None
  | Some z_star ->
      Proto.with_label "ext_distribute"
        (let mine = String.equal z z_star in
         (* A holder of the committed value already knows every authenticated
            tuple; everyone else learns its own from round 3a. *)
         let own_tuple j =
           encode_tuple ~index:j ~codeword:codewords.(j) ~witness:(Merkle.witness tree j)
         in
         (* Step 3a: matching parties ship codeword j to party j. *)
         let* inbox_a = Proto.exchange (fun j -> if mine then Some (own_tuple j) else None) in
         let shares = Hashtbl.create n in
         if mine then
           Array.iteri (fun j c -> Hashtbl.add shares j (c, own_tuple j)) codewords
         else harvest ~n ~z_star ~into:shares inbox_a;
         (* Step 3b: republish your own verified codeword to everyone. *)
         let republish =
           Option.map snd (Hashtbl.find_opt shares ctx.Ctx.me)
         in
         let* inbox_b =
           match republish with
           | Some raw -> Proto.broadcast raw
           | None -> Proto.receive_only ()
         in
         harvest ~n ~z_star ~into:shares inbox_b;
         (* Step 4: reconstruct from any n−t verified codewords. Lemma 6 makes
            failure unreachable when Π_BA+ returned non-⊥; stay total anyway. *)
         let collected =
           Hashtbl.fold (fun index (codeword, _) acc -> (index, codeword) :: acc) shares []
         in
         match Reed_solomon.decode_with codec collected with
         | Ok value -> Proto.return (Some value)
         | Error _ -> Proto.return None)
