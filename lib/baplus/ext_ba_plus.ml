open Net

let ( let* ) = Proto.( let* )

let encode_tuple ~index ~codeword ~witness =
  Wire.(
    encode
      (seq [ w_varint index; w_bytes codeword; w_bytes (Merkle.encode_witness witness) ]))

(* Direct-style decode (hoisted readers, no per-call option-bind closures):
   one of these runs per harvested share. *)
let r_bytes_hot = Wire.r_bytes ()

let decode_tuple raw =
  let open Wire in
  decode_full
    (fun cur ->
      match r_varint cur with
      | None -> None
      | Some index -> (
          match r_bytes_hot cur with
          | None -> None
          | Some codeword -> (
              match r_bytes_hot cur with
              | None -> None
              | Some witness_raw -> (
                  match Merkle.decode_witness witness_raw with
                  | None -> None
                  | Some witness -> Some (index, codeword, witness)))))
    raw

(* Collect verified codewords for root [z_star] from an inbox: at most one
   per index (collision resistance makes duplicates consistent anyway).
   Stores [index -> (codeword, raw_tuple)] so a tuple can be republished
   verbatim. A full table short-circuits the walk — indices are bounded by
   [n], so [n] entries means nothing new can be learned and the per-message
   decode would be pure waste (this is every matching party in round 3b). *)
let harvest ~n ~z_star ~into inbox =
  if Hashtbl.length into < n then
    Array.iter
      (function
        | None -> ()
        | Some raw -> (
            match decode_tuple raw with
            | None -> ()
            | Some (index, codeword, witness) ->
                if
                  index >= 0 && index < n
                  && (not (Hashtbl.mem into index))
                  && Merkle.verify ~root:z_star ~index ~value:codeword witness
                then Hashtbl.add into index (codeword, raw)))
      inbox

module Make (B : Ba.Substrate.S) = struct
  module BP = Ba_plus.Make (B)

  (* f-sensitive cost model: the inner Π_BA+ runs on the κ-bit Merkle root,
     then two distribution rounds ship O(ℓ/(n−t))-bit codewords with
     O(κ log n) witnesses.  Inherits BP's (hence B's) f-adaptivity. *)
  let cost_estimate (ctx : Ctx.t) ~value_bits ~f =
    let n = ctx.Ctx.n in
    let kappa = 8 * Sha256.digest_size in
    let bp = BP.cost_estimate ctx ~value_bits:kappa ~f in
    let log2n =
      let rec go acc p = if p >= n then acc else go (acc + 1) (2 * p) in
      go 0 1
    in
    let share = (value_bits / max 1 (Ctx.quorum ctx)) + (kappa * (log2n + 2)) in
    {
      Ba.Substrate.c_f = f;
      c_bits = bp.Ba.Substrate.c_bits + (2 * n * n * share);
      c_rounds = bp.Ba.Substrate.c_rounds + 2;
    }

  let run (ctx : Ctx.t) input =
  let n = ctx.Ctx.n in
  let k = Ctx.quorum ctx in
  (* One memoized codec context per (n, k) serves every FINDPREFIX iteration
     and every concurrent session at these parameters. *)
  let codec = Reed_solomon.ctx ~n ~k in
  (* Step 1: erasure-code the input and commit to the codewords. *)
  let codewords = Reed_solomon.encode_with codec input in
  let tree = Merkle.build codewords in
  let z = Merkle.root tree in
  (* Step 2: agree on a root. *)
  let* z_agreed = BP.run ctx z in
  match z_agreed with
  | None -> Proto.return None
  | Some z_star ->
      Proto.with_label "ext_distribute"
        (let mine = String.equal z z_star in
         (* A holder of the committed value already knows every authenticated
            tuple; everyone else learns its own from round 3a. Matching
            parties materialize all n tuples once — each is both sent in 3a
            and kept in [shares] below, and witness + encode per tuple is the
            expensive half of the round. *)
         let tuples =
           if mine then
             Array.init n (fun j ->
                 encode_tuple ~index:j ~codeword:codewords.(j)
                   ~witness:(Merkle.witness tree j))
           else [||]
         in
         (* Step 3a: matching parties ship codeword j to party j. *)
         let* inbox_a =
           Proto.exchange (fun j -> if mine then Some tuples.(j) else None)
         in
         let shares = Hashtbl.create n in
         if mine then
           Array.iteri (fun j c -> Hashtbl.add shares j (c, tuples.(j))) codewords
         else harvest ~n ~z_star ~into:shares inbox_a;
         (* Step 3b: republish your own verified codeword to everyone. *)
         let republish =
           Option.map snd (Hashtbl.find_opt shares ctx.Ctx.me)
         in
         let* inbox_b =
           match republish with
           | Some raw -> Proto.broadcast raw
           | None -> Proto.receive_only ()
         in
         harvest ~n ~z_star ~into:shares inbox_b;
         (* Step 4: reconstruct from any n−t verified codewords. Lemma 6 makes
            failure unreachable when Π_BA+ returned non-⊥; stay total anyway.
            A matching party skips the reconstruction: its shares are its own
            complete codeword set, whose decode is the committed input by the
            Reed-Solomon round-trip identity (differentially tested). *)
         if mine then Proto.return (Some input)
         else
           let collected =
             Hashtbl.fold (fun index (codeword, _) acc -> (index, codeword) :: acc) shares []
           in
           match Reed_solomon.decode_with codec collected with
           | Ok value -> Proto.return (Some value)
           | Error _ -> Proto.return None)
end

include Make (Ba.Substrate.Unauthenticated)
