(* Π_BA+ follows the Section 7 pseudocode line by line.

   Counting arguments enforced here (n > 3t):
   - a party sees at most two values with n−2t occurrences in step 1
     (3(n−2t) <= n would give n <= 3t), so votes carry at most two values;
   - at most two values can gather n−t votes in step 2 (each party votes for
     at most two values, so 3(n−t) <= 2n would give n <= 3t);
   - if n−2t honest parties share input v, every honest party votes for v and
     the honest (a, b) pairs satisfy v ∈ {a, b} ⊆ {v, v'} for a single v'. *)

open Net

let ( let* ) = Proto.( let* )

(* Hoisted codec halves: building the combinator chains per vote would
   allocate their closures once per message. *)
let w_vote = Wire.w_list Wire.w_bytes
let encode_vote values = Wire.encode (w_vote values)
let r_vote = Wire.r_list ~max:3 (Wire.r_bytes ())

(* A vote is valid only in canonical form: at most two values, strictly
   ascending. Anything else is a malformed byzantine message, dropped. *)
let decode_vote raw =
  match Wire.decode_full r_vote raw with
  | Some ([] as vs) | Some ([ _ ] as vs) -> Some vs
  | Some ([ v1; v2 ] as vs) when String.compare v1 v2 < 0 -> Some vs
  | Some _ | None -> None

(* Values occurring at least [threshold] times in [inbox], ascending.
   Counted over a flat list (at most 2n values: each sender contributes at
   most two) instead of a per-call Hashtbl — the sorted output makes the
   counting order irrelevant, and the table allocation dominated these tiny
   domains. *)
let values_with_support ~decode ~threshold inbox =
  let all = ref [] in
  Array.iter
    (function
      | None -> ()
      | Some raw -> List.iter (fun v -> all := v :: !all) (decode raw))
    inbox;
  let rec distinct_with_quorum acc = function
    | [] -> acc
    | v :: rest ->
        let count =
          1 + List.fold_left (fun c w -> if String.equal v w then c + 1 else c) 0 rest
        in
        let seen = List.exists (fun w -> String.equal v w) acc in
        if count >= threshold && not seen then distinct_with_quorum (v :: acc) rest
        else distinct_with_quorum acc rest
  in
  List.sort String.compare (distinct_with_quorum [] !all)

module Make (B : Ba.Substrate.S) = struct
  (* f-sensitive cost model, composed from the protocol's own structure: two
     all-to-all exchanges of the value plus two option and two bit instances
     of the substrate.  Inherits whatever f-adaptivity B's model has. *)
  let cost_estimate (ctx : Ctx.t) ~value_bits ~f =
    let n = ctx.Ctx.n in
    let exchanges = 2 * n * n * (value_bits + 16) in
    let opt = B.cost ctx ~value_bits ~f in
    let bit = B.cost ctx ~value_bits:1 ~f in
    {
      Ba.Substrate.c_f = f;
      c_bits = exchanges + (2 * opt.Ba.Substrate.c_bits) + (2 * bit.Ba.Substrate.c_bits);
      c_rounds = 2 + (2 * opt.Ba.Substrate.c_rounds) + (2 * bit.Ba.Substrate.c_rounds);
    }

  let run (ctx : Ctx.t) input =
  let t = ctx.Ctx.t in
  let quorum = Ctx.quorum ctx in
  Proto.with_label "pi_ba_plus"
    ((* Step 1: distribute inputs; find values received from n−2t parties. *)
     let* inbox1 = Proto.broadcast input in
     let seen =
       values_with_support
         ~decode:(fun raw -> [ raw ])
         ~threshold:(ctx.Ctx.n - (2 * t))
         inbox1
     in
     (* The counting argument caps [seen] at two values; if byzantine
        equivocation could ever break this we must not crash. *)
     let seen = match seen with v1 :: v2 :: _ -> [ v1; v2 ] | vs -> vs in
     (* Step 2: vote for the values seen. *)
     let* inbox2 = Proto.broadcast (encode_vote seen) in
     let supported =
       values_with_support
         ~decode:(fun raw -> Option.value ~default:[] (decode_vote raw))
         ~threshold:quorum inbox2
     in
     (* Step 3: derive (a, b) with a <= b. *)
     let a, b =
       match supported with
       | [] -> (None, None)
       | [ v ] -> (Some v, Some v)
       | v :: rest -> (Some v, Some (List.nth rest (List.length rest - 1)))
     in
     (* Step 4: try to agree on a. *)
     let* a' = B.run_option ctx a in
     let happy_a = match (a, a') with Some x, Some y -> String.equal x y | _ -> false in
     let* agreed_a = B.run_bit ctx happy_a in
     if agreed_a then Proto.return a'
     else
       (* Step 5: try to agree on b. *)
       let* b' = B.run_option ctx b in
       let happy_b = match (b, b') with Some x, Some y -> String.equal x y | _ -> false in
       let* agreed_b = B.run_bit ctx happy_b in
       if agreed_b then Proto.return b' else Proto.return None)
end

include Make (Ba.Substrate.Unauthenticated)
