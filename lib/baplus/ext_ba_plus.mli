(** Π_ℓBA+ (Section 7, Theorem 1): Byzantine Agreement for {e long} values
    with Intrusion Tolerance and Bounded Pre-Agreement, at communication cost
    [O(ℓn + κ·n²·log n) + BITS_κ(Π_BA)].

    Construction: each party Reed–Solomon-encodes its ℓ-bit input into [n]
    codewords of O(ℓ/n) bits, commits to them with a Merkle tree, and runs
    Π_BA+ on the κ-bit root [z]. On a non-⊥ root [z*], parties holding the
    matching value ship codeword [j] (with its Merkle witness) to party [j];
    every party then republishes its own authenticated codeword to everyone,
    and [n−t] verified codewords reconstruct the value by erasure decoding.

    Merkle verification makes corrupted codewords detectable, so decoding
    never sees a wrong share; Intrusion Tolerance of Π_BA+ guarantees the
    committed value is an honest input, so reconstruction is consistent. *)

module Make (B : Ba.Substrate.S) : sig
  val run : Net.Ctx.t -> string -> string option Net.Proto.t
  (** [run ctx v] joins Π_ℓBA+ with input [v] (arbitrary bytes). Output
      [None] is ⊥. All honest outputs are equal; a non-⊥ output is an honest
      input (Intrusion Tolerance); ⊥ implies fewer than [n−2t] honest parties
      shared an input (Bounded Pre-Agreement).  The inner Π_BA+ runs on the
      substrate [B]. *)

  val cost_estimate :
    Net.Ctx.t -> value_bits:int -> f:int -> Ba.Substrate.cost
  (** f-sensitive cost model for one Π_ℓBA+ instance: the inner Π_BA+ on the
      κ-bit root plus the two codeword-distribution rounds.  Composes
      {!Ba_plus.Make.cost_estimate}, so a fault-adaptive substrate's early
      stopping propagates.  A planning model, not an accounting identity. *)
end

include module type of Make (Ba.Substrate.Unauthenticated)
(** The default instantiation over {!Ba.Substrate.Unauthenticated}. *)
