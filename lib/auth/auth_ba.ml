(** Authenticated multivalued Byzantine Agreement for t < n/2 — the
    quorum-certificate backend of the Π_BA substrate seam, in the spirit of
    Momose–Ren ("Optimal Communication Complexity of Authenticated Byzantine
    Agreement") and Spiegelman ("In Search for an Optimal Authenticated BA"):
    a view-by-view leader protocol whose safety rests on one fact available
    only past n/3 — with t < n/2, every certificate of n−t signatures
    contains at least one honest signature.

    Structure (4t + 7 rounds, O(n²) messages per view):

    + {b Input round}: every party broadcasts its signed input.  A value with
      n−t distinct signed inputs forms an {e input certificate}; a second
      round exchanges the certificates parties assembled, so any honestly
      assembled certificate is known to every would-be leader.
    + {b Views 1..t+1} (leader = view − 1), four rounds each:
      {e status} — every party rebroadcasts its current lock certificate;
      {e propose} — the leader broadcasts a value justified by the
      highest-view lock certificate it knows, else by an input certificate,
      else bare (its own input);
      {e vote} — a party accepts a proposal whose justification dominates its
      own lock (a bare proposal only if it is unlocked {e and} assembled no
      input certificate itself) and broadcasts a signed vote;
      {e certify} — n−t distinct votes on (view, value) form a {e lock
      certificate}; parties adopt it as their lock and rebroadcast it.
    + {b Resolution round}: locks are broadcast once more and every party
      adopts the highest-view certificate it sees; the output is the locked
      value, or the spec's default if no value was ever certified.

    Correctness sketch (t < n/2): in the first honest-leader view v* the
    leader's justification dominates every honest lock (statuses are
    broadcast) and is acceptable to all — if no honest party is locked and
    none assembled an input certificate, the bare fallback is accepted by
    construction — so all honest parties vote, certify and lock (v*, x).
    From then on no certificate for y ≠ x can form (it would need an honest
    vote, but locked parties only accept justifications of view ≥ v*, which
    inductively only exist for x), so the resolution round converges on x
    regardless of which certificates byzantine parties reveal late.
    Validity: under honest unanimity on v only v can gather an input
    certificate and every honest party rejects bare proposals (it assembled
    v's certificate itself), so only v can ever be voted.  Over a two-value
    domain the output is always an honest input or the (in-domain) default —
    the Lemma 2 property ADDLASTBIT / GETOUTPUT / Π_ℤ need.

    Signatures are domain-separated per instance; a party spends at most
    t + 2 one-time keys per instance ({!Make.signatures_per_instance}). *)

open Net

let ( let* ) = Proto.( let* )

module Make (S : Sigs.Scheme.S) = struct
  type setup = { pki : string array; signers : S.signer array }

  (* One signed input plus at most one signed vote per view. *)
  let signatures_per_instance ~t = t + 2

  (* Signed bodies, domain-separated from Dolev–Strong ("DS1") and across
     instances/views. *)
  let input_body ~instance value =
    Wire.(encode (seq [ w_fixed "ABA"; w_varint instance; w_fixed "i"; w_bytes value ]))

  let vote_body ~instance ~view value =
    Wire.(
      encode
        (seq [ w_fixed "ABA"; w_varint instance; w_fixed "v"; w_varint view; w_bytes value ]))

  (* A certificate: [view = 0] is an input certificate (quorum of signed
     inputs), [view >= 1] a lock certificate (quorum of signed votes on
     (view, value)). [sigs] holds (party, encoded signature) with strictly
     ascending party ids — ascent is the distinctness check. *)
  type cert = { view : int; value : string; sigs : (int * string) list }

  let encode_cert c =
    Wire.(
      encode
        (seq [ w_varint c.view; w_bytes c.value; w_list (w_pair w_varint w_bytes) c.sigs ]))

  let decode_cert ~n raw =
    let open Wire in
    decode_full
      (fun cur ->
        let* view = r_varint cur in
        let* value = r_bytes () cur in
        let* sigs = r_list ~max:n (r_pair r_varint (r_bytes ())) cur in
        Some { view; value; sigs })
      raw

  let cert_valid setup ~instance ~n ~quorum ~max_view ~decodes c =
    c.view >= 0 && c.view <= max_view
    && decodes c.value
    &&
    let body =
      if c.view = 0 then input_body ~instance c.value
      else vote_body ~instance ~view:c.view c.value
    in
    let ok, count, _ =
      List.fold_left
        (fun (ok, count, prev) (party, sig_raw) ->
          if (not ok) || party <= prev || party >= n then (false, 0, 0)
          else
            match S.decode_signature sig_raw with
            | Some s when S.verify ~public:setup.pki.(party) ~msg:body s ->
                (true, count + 1, party)
            | Some _ | None -> (false, 0, 0))
        (true, 0, -1) c.sigs
    in
    ok && count >= quorum

  (* Signed (value, signature) wire messages — input and vote rounds. *)
  let encode_signed value sig_raw = Wire.(encode (w_pair w_bytes w_bytes (value, sig_raw)))

  let r_signed = Wire.(r_pair (r_bytes ()) (r_bytes ()))

  (* Group an inbox of signed (value, sig) messages by value, keeping only
     signatures that verify for their sender slot: value -> (party, sig)
     entries in descending party order (senders are scanned ascending). *)
  let collect_signed setup ~body inbox =
    let acc = ref [] in
    Array.iteri
      (fun sender slot ->
        match slot with
        | None -> ()
        | Some raw -> (
            match Wire.decode_full r_signed raw with
            | None -> ()
            | Some (value, sig_raw) -> (
                match S.decode_signature sig_raw with
                | Some s when S.verify ~public:setup.pki.(sender) ~msg:(body value) s ->
                    let cur = Option.value ~default:[] (List.assoc_opt value !acc) in
                    acc := (value, (sender, sig_raw) :: cur) :: List.remove_assoc value !acc
                | Some _ | None -> ())))
      inbox;
    !acc

  (* The (unique, if any: 2(n−t) > n) quorum-supported value of a collected
     inbox, as a certificate. *)
  let quorum_cert ~quorum ~view ~decodes collected =
    List.find_map
      (fun (value, entries) ->
        if List.length entries >= quorum && decodes value then
          Some { view; value; sigs = List.rev entries }
        else None)
      collected

  let run setup (spec : 'v Ba.Substrate.spec) (ctx : Ctx.t) ~instance (input : 'v) :
      'v Proto.t =
    let n = ctx.Ctx.n and t = ctx.Ctx.t and me = ctx.Ctx.me in
    if Array.length setup.pki <> n || Array.length setup.signers <> n then
      invalid_arg "Auth_ba.run: setup size mismatch";
    if 2 * t >= n then invalid_arg "Auth_ba.run: requires t < n/2";
    let quorum = Ctx.quorum ctx in
    let max_view = t + 1 in
    let enc_input = spec.encode input in
    let decodes v = Option.is_some (spec.decode v) in
    let cert_valid c = cert_valid setup ~instance ~n ~quorum ~max_view ~decodes c in
    Proto.with_label "auth_ba"
      ((* Input round: broadcast the signed input, assemble an input
          certificate if some value reaches quorum in this inbox. *)
       let sig1 = S.sign setup.signers.(me) (input_body ~instance enc_input) in
       let* inbox1 = Proto.broadcast (encode_signed enc_input (S.encode_signature sig1)) in
       let my_input_cert =
         quorum_cert ~quorum ~view:0 ~decodes
           (collect_signed setup ~body:(input_body ~instance) inbox1)
       in
       (* Certificate-exchange round: every honestly assembled input
          certificate reaches every would-be leader. *)
       let* inbox2 =
         match my_input_cert with
         | Some c -> Proto.broadcast (encode_cert c)
         | None -> Proto.receive_only ()
       in
       let known_input_cert = ref my_input_cert in
       Array.iter
         (function
           | None -> ()
           | Some raw -> (
               match decode_cert ~n raw with
               | Some c when c.view = 0 && cert_valid c -> (
                   (* Deterministic leader choice: keep the smallest value. *)
                   match !known_input_cert with
                   | Some best when String.compare best.value c.value <= 0 -> ()
                   | _ -> known_input_cert := Some c)
               | _ -> ()))
         inbox2;
       (* The lock: highest-view certificate adopted so far, with its raw
          encoding for rebroadcast. *)
       let lock = ref None in
       let adopt c raw =
         if c.view >= 1 then
           match !lock with
           | Some (w, _, _) when w >= c.view -> ()
           | _ -> lock := Some (c.view, c.value, raw)
       in
       let adopt_from_inbox inbox =
         Array.iter
           (function
             | None -> ()
             | Some raw -> (
                 match decode_cert ~n raw with
                 | Some c when cert_valid c -> adopt c raw
                 | _ -> ()))
           inbox
       in
       let rec view_loop w =
         if w > max_view then Proto.return ()
         else begin
           let leader = w - 1 in
           (* Acceptance compares against the lock as of view start — the
              certificate this party broadcasts in the status round — so a
              selectively delivered status certificate cannot desynchronize
              a party from an honest leader's justification. *)
           let snapshot = match !lock with Some (v, _, _) -> v | None -> 0 in
           let* status_inbox =
             match !lock with
             | Some (_, _, raw) -> Proto.broadcast raw
             | None -> Proto.receive_only ()
           in
           adopt_from_inbox status_inbox;
           (* Propose: the leader's lock (after absorbing statuses) dominates
              every honest snapshot; without locks, fall back to an input
              certificate, else to the bare input. Kinds: 0 bare, 1 input
              cert, 2 lock cert. *)
           let proposal =
             if me <> leader then None
             else
               Some
                 (match !lock with
                 | Some (_, value, raw) ->
                     Wire.(encode (seq [ w_u8 2; w_bytes value; w_bytes raw ]))
                 | None -> (
                     match !known_input_cert with
                     | Some c ->
                         Wire.(
                           encode (seq [ w_u8 1; w_bytes c.value; w_bytes (encode_cert c) ]))
                     | None -> Wire.(encode (seq [ w_u8 0; w_bytes enc_input; w_bytes "" ]))))
           in
           let* prop_inbox = Proto.exchange (fun _ -> proposal) in
           let accepted =
             match prop_inbox.(leader) with
             | None -> None
             | Some raw -> (
                 let decoded =
                   Wire.(decode_full (r_pair r_u8 (r_pair (r_bytes ()) (r_bytes ()))) raw)
                 in
                 match decoded with
                 | None -> None
                 | Some (kind, (value, cert_raw)) ->
                     if not (decodes value) then None
                     else begin
                       match kind with
                       | 0 ->
                           (* Bare: only for parties that are unlocked and
                              assembled no input certificate themselves —
                              exactly the parties an honest bare leader is
                              guaranteed acceptable to. *)
                           if snapshot = 0 && my_input_cert = None then Some value
                           else None
                       | 1 -> (
                           match decode_cert ~n cert_raw with
                           | Some c
                             when c.view = 0
                                  && String.equal c.value value
                                  && snapshot = 0 && cert_valid c ->
                               Some value
                           | _ -> None)
                       | 2 -> (
                           match decode_cert ~n cert_raw with
                           | Some c
                             when c.view >= 1
                                  && String.equal c.value value
                                  && c.view >= snapshot && cert_valid c ->
                               Some value
                           | _ -> None)
                       | _ -> None
                     end)
           in
           let* vote_inbox =
             match accepted with
             | Some value ->
                 let s = S.sign setup.signers.(me) (vote_body ~instance ~view:w value) in
                 Proto.broadcast (encode_signed value (S.encode_signature s))
             | None -> Proto.receive_only ()
           in
           let formed =
             quorum_cert ~quorum ~view:w ~decodes
               (collect_signed setup ~body:(vote_body ~instance ~view:w) vote_inbox)
           in
           (match formed with Some c -> adopt c (encode_cert c) | None -> ());
           let* cert_inbox =
             match formed with
             | Some c -> Proto.broadcast (encode_cert c)
             | None -> Proto.receive_only ()
           in
           adopt_from_inbox cert_inbox;
           view_loop (w + 1)
         end
       in
       let* () = view_loop 1 in
       (* Resolution round: late, selectively revealed certificates cannot
          split the output — past the first honest-leader view every
          certificate carries the same value. *)
       let* final_inbox =
         match !lock with
         | Some (_, _, raw) -> Proto.broadcast raw
         | None -> Proto.receive_only ()
       in
       adopt_from_inbox final_inbox;
       match !lock with
       | Some (_, value, _) -> (
           match spec.decode value with
           | Some v -> Proto.return v
           | None -> Proto.return spec.default)
       | None -> Proto.return spec.default)

  let rounds ~t = (4 * t) + 7

  (* Convex Agreement at t < n/2 on the new BA: every party broadcasts its
     input over the authenticated channels, the n per-sender values are
     agreed with n parallel BA instances (instance j tagged by sender j),
     and the (t+1)-th smallest entry of the common view is the output — the
     same order-statistic argument as {!Auth_ca}: with n > 2t at most t
     entries lie below the smallest honest input and at least t+1 lie at or
     below the largest. *)
  let agree setup (ctx : Ctx.t) ~bits v_in =
    if Bitstring.length v_in <> bits then invalid_arg "Auth_ba.agree: input length";
    let n = ctx.Ctx.n and t = ctx.Ctx.t in
    let spec : Bitstring.t Ba.Substrate.spec =
      {
        equal = Bitstring.equal;
        default = Bitstring.zero bits;
        encode = (fun v -> Wire.encode (Wire.w_bits v));
        decode =
          (fun raw ->
            match Wire.decode_full (Wire.r_bits ()) raw with
            | Some v when Bitstring.length v = bits -> Some v
            | Some _ | None -> None);
      }
    in
    Proto.with_label "auth_ba_ca"
      (let* inbox = Proto.broadcast (spec.encode v_in) in
       let received =
         Array.init n (fun j ->
             match inbox.(j) with
             | Some raw -> (
                 match spec.decode raw with Some v -> v | None -> spec.default)
             | None -> spec.default)
       in
       let* view =
         Proto.parallel
           (List.init n (fun j -> run setup spec ctx ~instance:j received.(j)))
       in
       let sorted = List.sort Bitstring.compare view in
       match List.nth_opt sorted t with
       | Some v -> Proto.return v
       | None -> Proto.return v_in)
end

(** {1 XMSS instantiation} *)

module Xmss = Make (Sigs.Xmss.Scheme)

let of_setup (s : Setup.t) : Xmss.setup =
  { Xmss.pki = s.Setup.pki; signers = s.Setup.signers }

(* Signing budget for a protocol expected to open [instances] agreement
   instances at corruption bound [t] (each instance spends ≤ t+2 keys). *)
let required_capacity ~t ~instances = instances * (t + 2)

(* The substrate view: a fresh first-class module per protocol run.  The
   embedded instance counter advances identically at every party — honest
   parties open BA instances in a common order because they branch only on
   agreed data — so signatures stay domain-separated without an instance
   parameter in the seam.  Use one substrate (and one fresh {!Setup}) per
   protocol run; instance tags restart at 0 for each substrate. *)
let substrate (s : Setup.t) : (module Ba.Substrate.S) =
  let xs = of_setup s in
  let next_instance = ref 0 in
  (module struct
    let name = "auth-quorum"
    let assumption = `Authenticated
    let max_t ~n = (n - 1) / 2
    let rounds (ctx : Net.Ctx.t) = (4 * ctx.Net.Ctx.t) + 7

    (* Certificate rounds dominate: O(n²) messages per round, each carrying
       up to a quorum of signatures.  An order-of-magnitude model, not an
       accounting identity. *)
    let bits_estimate (ctx : Net.Ctx.t) ~value_bits =
      let n = ctx.Net.Ctx.n in
      rounds ctx * n * n
      * (value_bits + (8 * Net.Ctx.quorum ctx * Sigs.Xmss.signature_bytes))

    (* The certificate exchange runs to its worst-case schedule regardless
       of how many corruptions materialize: flat in f. *)
    let cost ctx ~value_bits ~f =
      {
        Ba.Substrate.c_f = f;
        c_bits = bits_estimate ctx ~value_bits;
        c_rounds = rounds ctx;
      }

    let run spec ctx v =
      let instance = !next_instance in
      incr next_instance;
      Xmss.run xs spec ctx ~instance v

    let run_bit ctx b = run Ba.Phase_king.bit_spec ctx b
    let run_bytes ctx v = run Ba.Phase_king.bytes_spec ctx v
    let run_option ctx v = run Ba.Phase_king.option_spec ctx v
  end)
