(** Authenticated multivalued Byzantine Agreement for t < n/2 — the
    quorum-certificate backend of the Π_BA seam ({!Ba.Substrate.S}).

    A view-by-view leader protocol in the Momose–Ren spirit: signed inputs
    form input certificates, leaders propose values justified by the
    highest-view certificate they know, quorums of signed votes form lock
    certificates, and a final resolution round converges every honest party
    on the highest-view certificate.  With t < n/2 every certificate of
    n − t signatures contains an honest one — the fact that replaces the
    t < n/3 counting arguments of the plain model.

    Costs: 4t + 7 rounds, O(n²) messages per view, each carrying at most a
    quorum of signatures. *)

module Make (S : Sigs.Scheme.S) : sig
  type setup = { pki : string array; signers : S.signer array }
  (** Verification keys and signing keys by party index; a real deployment
      hands party [i] only [signers.(i)]. *)

  val signatures_per_instance : t:int -> int
  (** [t + 2]: one signed input plus at most one signed vote per view —
      the per-party signing budget of one [run]. *)

  val run :
    setup ->
    'v Ba.Substrate.spec ->
    Net.Ctx.t ->
    instance:int ->
    'v ->
    'v Net.Proto.t
  (** Byzantine Agreement on ['v] at t < n/2.  [instance] domain-separates
      signatures across concurrent or sequential invocations sharing one
      [setup]; honest parties must agree on it (it is a protocol parameter).
      If no value is certified in any view the output is [spec.default].
      Over a two-value domain the output is always some honest party's input
      (the external-validity shape Π_ℤ's bit decisions need).  Raises
      [Invalid_argument] if the setup size mismatches [ctx] or 2t ≥ n.
      Telemetry label: ["auth_ba"]. *)

  val rounds : t:int -> int
  (** [4t + 7]: 2 input rounds, 4 per view over t+1 views, 1 resolution. *)

  val agree : setup -> Net.Ctx.t -> bits:int -> Bitstring.t -> Bitstring.t Net.Proto.t
  (** Convex Agreement at {b t < n/2}: broadcast inputs, agree on all n
      per-sender values with n parallel BA instances (instances [0..n-1] —
      do not reuse them elsewhere under the same [setup]), output the
      (t+1)-th smallest of the common view.  Same order-statistic validity
      argument as {!Auth_ca}: with n > 2t at most t entries sit below the
      smallest honest input.  Spends n·(t+2) signatures per party.  Raises
      [Invalid_argument] if [v] is not [bits] bits.  Telemetry label:
      ["auth_ba_ca"]. *)
end

module Xmss : sig
  type setup = { pki : string array; signers : Sigs.Xmss.signer array }

  val signatures_per_instance : t:int -> int

  val run :
    setup ->
    'v Ba.Substrate.spec ->
    Net.Ctx.t ->
    instance:int ->
    'v ->
    'v Net.Proto.t

  val rounds : t:int -> int
  val agree : setup -> Net.Ctx.t -> bits:int -> Bitstring.t -> Bitstring.t Net.Proto.t
end
(** The XMSS instantiation — the scheme {!Setup} provisions. *)

val of_setup : Setup.t -> Xmss.setup
(** View an existing {!Setup.t} (as used by {!Dolev_strong} / {!Auth_ca}) as
    an {!Xmss} setup. *)

val required_capacity : t:int -> instances:int -> int
(** [instances × (t + 2)]: the per-party XMSS capacity a protocol opening
    [instances] BA instances needs.  [Xmss.agree] alone opens [n]. *)

val substrate : Setup.t -> (module Ba.Substrate.S)
(** The authenticated backend of the Π_BA seam: name ["auth-quorum"],
    assumption [`Authenticated], resilience t < n/2.

    The returned module embeds an instance counter that advances on every
    [run]: honest parties open BA instances in a common order (they branch
    only on agreed data), so tags stay synchronized without an [instance]
    parameter in the seam.  Create the substrate {e per party, inside the
    protocol closure}, from a setup fresh for this run — signers are
    stateful and instance tags restart at 0 per substrate.

    Note the resilience split: plugging this substrate into the functorized
    Π_ℤ stack ([Convex.Ca_int.Make]) upgrades the BA sub-calls to quorum
    certificates, but the surrounding CA machinery keeps its own t < n/3
    counting arguments — the composite still requires t < n/3.  Native
    t < n/2 CA is [Xmss.agree]. *)
