(** A stateful many-time signature scheme in the XMSS style: N Lamport
    one-time keys whose public digests form a Merkle tree; the public key is
    the root; signature i carries the OTS index, the OTS public digest with
    its Merkle authentication path, and the Lamport signature.

    This is the "cryptographic setup" assumed by the authenticated-setting
    protocols ({!Auth.Dolev_strong}, {!Auth.Auth_ca}): every party's root is
    known to all (a PKI).

    The signer is stateful — each one-time key is used at most once; signing
    beyond capacity raises. *)

type signer = {
  secrets : Lamport.secret array;
  publics : string array;  (** OTS public digests, for re-building paths *)
  tree : Merkle.tree;
  mutable next : int;
}

type public = string
(** The Merkle root. *)

type signature = {
  index : int;
  ots_public : string;
  witness : Merkle.witness;
  ots_signature : Lamport.signature;
}

(** [generate rng ~capacity] — [capacity] one-time keys. *)
let generate rng ~capacity =
  if capacity < 1 then invalid_arg "Xmss.generate: capacity";
  let pairs = Array.init capacity (fun _ -> Lamport.generate rng) in
  let secrets = Array.map fst pairs in
  let publics = Array.map snd pairs in
  let tree = Merkle.build publics in
  ({ secrets; publics; tree; next = 0 }, Merkle.root tree)

let remaining signer = Array.length signer.secrets - signer.next

let sign signer msg =
  if remaining signer = 0 then failwith "Xmss.sign: key exhausted";
  let index = signer.next in
  signer.next <- index + 1;
  {
    index;
    ots_public = signer.publics.(index);
    witness = Merkle.witness signer.tree index;
    ots_signature = Lamport.sign signer.secrets.(index) msg;
  }

let verify ~public ~msg signature =
  signature.index >= 0
  && Merkle.verify ~root:public ~index:signature.index ~value:signature.ots_public
       signature.witness
  && Lamport.verify ~public:signature.ots_public ~msg signature.ots_signature

(** {1 Wire codecs} *)

let encode_signature s =
  Wire.(
    encode
      (seq
         [
           w_varint s.index;
           w_bytes s.ots_public;
           w_bytes (Merkle.encode_witness s.witness);
           w_bytes (Lamport.encode_signature s.ots_signature);
         ]))

let decode_signature raw =
  let open Wire in
  decode_full
    (fun cur ->
      let* index = r_varint cur in
      let* ots_public = r_bytes () cur in
      let* witness_raw = r_bytes () cur in
      let* witness = Merkle.decode_witness witness_raw in
      let* ots_raw = r_bytes () cur in
      let* ots_signature = Lamport.decode_signature ots_raw in
      Some { index; ots_public; witness; ots_signature })
    raw

(* Upper bound on the encoded size, for capacities up to 2^20 one-time keys:
   the Lamport payload with its length prefix, the 32-byte OTS public digest,
   a ≤ 3-byte varint index, and a ≤ 20-level authentication path at 32 bytes
   + framing per level.  The true size varies with capacity and index (the
   witness depth is ⌈log₂ capacity⌉); this constant is what the cost model
   quotes. *)
let signature_bytes = Lamport.signature_bytes + 3 + 32 + 2 + 3 + (20 * 34) + 8

(** {1 Scheme conformance} *)

module Scheme = struct
  type nonrec signer = signer
  type nonrec signature = signature

  let name = "xmss"
  let generate = generate
  let remaining = remaining
  let sign = sign
  let verify = verify
  let signature_bytes = signature_bytes
  let encode_signature = encode_signature
  let decode_signature = decode_signature
end
