(** Lamport one-time signatures over SHA-256 — hash-based signatures need no
    number theory, so they are the natural scheme for this repository's
    sealed toolchain (and the in-simulation adversary cannot forge them
    without inverting SHA-256).

    Key: 2×256 random 32-byte preimages; the public key is the digest of the
    512 corresponding hashes. A signature reveals, for each bit of the
    message digest, one preimage — plus the 256 unrevealed hashes needed to
    recompute the public-key digest.

    STRICTLY ONE-TIME: signing two different messages with one key leaks
    enough preimages to forge. {!Xmss} builds a stateful many-time scheme on
    top. *)

let hash_bits = 256
let digest_size = Sha256.digest_size

type secret = { preimages : string array array (* [bit].[0|1] -> 32 bytes *) }

type public = string
(** 32-byte digest of the 512 public hashes. *)

type signature = {
  revealed : string array;  (** preimage for each digest bit, 256 entries *)
  others : string array;  (** hash of the unrevealed preimage, 256 entries *)
}

let generate (rng : Net.Prng.t) =
  let preimages =
    Array.init hash_bits (fun _ ->
        [| Net.Prng.bytes rng digest_size; Net.Prng.bytes rng digest_size |])
  in
  let ctx = Sha256.init () in
  Array.iter
    (fun pair ->
      Sha256.feed ctx (Sha256.digest pair.(0));
      Sha256.feed ctx (Sha256.digest pair.(1)))
    preimages;
  ({ preimages }, Sha256.finalize ctx)

let message_bit digest i = Char.code digest.[i / 8] land (0x80 lsr (i mod 8)) <> 0

let sign secret msg =
  let digest = Sha256.digest msg in
  let revealed = Array.make hash_bits "" in
  let others = Array.make hash_bits "" in
  for i = 0 to hash_bits - 1 do
    let b = if message_bit digest i then 1 else 0 in
    revealed.(i) <- secret.preimages.(i).(b);
    others.(i) <- Sha256.digest secret.preimages.(i).(1 - b)
  done;
  { revealed; others }

let verify ~public ~msg signature =
  Array.length signature.revealed = hash_bits
  && Array.length signature.others = hash_bits
  && Array.for_all (fun s -> String.length s = digest_size) signature.revealed
  && Array.for_all (fun s -> String.length s = digest_size) signature.others
  &&
  let digest = Sha256.digest msg in
  let ctx = Sha256.init () in
  for i = 0 to hash_bits - 1 do
    let revealed_hash = Sha256.digest signature.revealed.(i) in
    if message_bit digest i then begin
      Sha256.feed ctx signature.others.(i);
      Sha256.feed ctx revealed_hash
    end
    else begin
      Sha256.feed ctx revealed_hash;
      Sha256.feed ctx signature.others.(i)
    end
  done;
  String.equal (Sha256.finalize ctx) public

(** {1 Wire codecs} *)

let encode_signature s =
  let buf = Buffer.create (2 * hash_bits * digest_size) in
  Array.iter (Buffer.add_string buf) s.revealed;
  Array.iter (Buffer.add_string buf) s.others;
  Buffer.contents buf

let signature_bytes = 2 * hash_bits * digest_size

let decode_signature raw =
  if String.length raw <> signature_bytes then None
  else
    let part off i = String.sub raw ((off + i) * digest_size) digest_size in
    Some
      {
        revealed = Array.init hash_bits (part 0);
        others = Array.init hash_bits (part hash_bits);
      }

(** {1 Scheme conformance} *)

(* One-time keys under the many-time {!Scheme.S} contract: capacity is
   pinned to 1 and the signer counts its single use down, turning the
   "strictly one-time" discipline from a comment into a runtime check. *)
module Scheme = struct
  type nonrec signature = signature
  type signer = { secret : secret; mutable unused : bool }

  let name = "lamport-ots"

  let generate rng ~capacity =
    if capacity <> 1 then invalid_arg "Lamport.Scheme.generate: one-time scheme, capacity must be 1";
    let secret, public = generate rng in
    ({ secret; unused = true }, public)

  let remaining s = if s.unused then 1 else 0

  let sign s msg =
    if not s.unused then failwith "Lamport.Scheme.sign: one-time key already used";
    s.unused <- false;
    sign s.secret msg

  let verify = verify
  let signature_bytes = signature_bytes
  let encode_signature = encode_signature
  let decode_signature = decode_signature
end
