(** Lamport one-time signatures over SHA-256.

    Hash-based signatures need no number theory, so they are the natural
    scheme for this repository's sealed toolchain; the in-simulation
    adversary cannot forge them without inverting SHA-256.

    {b STRICTLY ONE-TIME}: signing two different messages with one key leaks
    enough preimages to forge — use {!Xmss} for a stateful many-time
    scheme. *)

type secret
type public = string
(** 32-byte digest of the 512 public hashes. *)

type signature

val generate : Net.Prng.t -> secret * public
(** Deterministic in the PRNG state (reproducible simulations). *)

val sign : secret -> string -> signature

val verify : public:public -> msg:string -> signature -> bool
(** Total on arbitrary (adversarial) signatures. *)

val signature_bytes : int
(** Encoded size: 2 × 256 × 32 bytes. *)

val encode_signature : signature -> string
val decode_signature : string -> signature option

module Scheme : Scheme.S with type signature = signature
(** {!Scheme.S} view of the one-time scheme: [generate] requires
    [capacity = 1] (raises [Invalid_argument] otherwise) and the signer
    enforces single use at runtime ([sign] raises [Failure] on reuse). *)
