(* The shared signature-scheme contract: Lamport and Xmss both conform (as
   Lamport.Scheme / Xmss.Scheme), so authenticated protocols can be written
   scheme-generically — Auth.Auth_ba.Make is the first such consumer. *)

module type S = sig
  type signer
  (** May be stateful: one-time and few-time schemes count keys down. *)

  type signature

  val name : string

  val generate : Net.Prng.t -> capacity:int -> signer * string
  (** [generate rng ~capacity] returns a signer good for [capacity]
      signatures and its public key (always a string, PKI-friendly).
      Deterministic in the PRNG state.  Raises [Invalid_argument] if the
      scheme cannot honor [capacity] (e.g. one-time Lamport with
      [capacity <> 1]). *)

  val remaining : signer -> int
  val sign : signer -> string -> signature
  (** Raises [Failure] once the signer is exhausted. *)

  val verify : public:string -> msg:string -> signature -> bool
  (** Total on arbitrary (adversarial) signatures. *)

  val signature_bytes : int
  (** Nominal encoded signature size in bytes (an upper bound for
      variable-width encodings) — the cost model backends quote. *)

  val encode_signature : signature -> string
  val decode_signature : string -> signature option
end
