(** A stateful many-time signature scheme in the XMSS style: N Lamport
    one-time keys under a Merkle tree; the public key is the root; each
    signature carries its OTS index, the OTS public digest with its
    authentication path, and the Lamport signature.

    This is the "cryptographic setup" the authenticated-setting protocols
    assume ({!Auth.Dolev_strong}, {!Auth.Auth_ca}). *)

type signer
(** Stateful: every one-time key is used at most once. *)

type public = string
(** The Merkle root (32 bytes). *)

type signature

val generate : Net.Prng.t -> capacity:int -> signer * public
(** [capacity] one-time keys. Raises [Invalid_argument] if < 1. *)

val remaining : signer -> int

val sign : signer -> string -> signature
(** Raises [Failure] once the key is exhausted. *)

val verify : public:public -> msg:string -> signature -> bool

val encode_signature : signature -> string
val decode_signature : string -> signature option

val signature_bytes : int
(** Upper bound on the encoded signature size for capacities up to 2^20
    one-time keys (the true size varies with capacity and index; see the
    implementation for the breakdown).  This is the figure the authenticated
    backends' cost model quotes. *)

module Scheme : Scheme.S with type signer = signer and type signature = signature
(** {!Scheme.S} view of the scheme — the backing for scheme-generic
    authenticated protocols ({!Auth.Auth_ba.Make}). *)
