(* Fixed domain pool with work-stealing index claims.

   One job at a time (the [submit] mutex): every use in this codebase is a
   fork-join loop whose caller has nothing else to do, so the caller drains
   chunks alongside the workers instead of queueing jobs. Indices are claimed
   from an [Atomic] counter — which domain gets which index is scheduling
   noise, but every index runs exactly once and writes only its own slot, so
   results are position-deterministic.

   Workers never touch a job after the caller returned: the caller zeroes the
   join [slots] and waits for [active] to drain before clearing the job slot,
   all under the pool mutex, so a late-waking worker finds either the live
   job (and joins it, making [active] non-zero) or no job at all. *)

let max_domains = 64
let recommended () = Domain.recommended_domain_count ()
let clamp domains = if domains < 1 then 1 else min domains max_domains

type job = {
  chunks : int;
  next : int Atomic.t;  (* next unclaimed chunk *)
  cancelled : bool Atomic.t;  (* a body raised: skip unclaimed chunks *)
  body : int -> unit;
  mutable slots : int;  (* workers still allowed to join (pool mutex) *)
  mutable active : int;  (* workers currently draining (pool mutex) *)
  mutable failed : exn option;  (* first exception, re-raised by the caller *)
}

type t = {
  m : Mutex.t;
  work : Condition.t;  (* a job was posted, or shutdown *)
  idle : Condition.t;  (* a worker left the job *)
  submit : Mutex.t;  (* serializes jobs (and growth) across caller threads *)
  mutable job : job option;
  mutable epoch : int;  (* bumped per job so sleeping workers spot new work *)
  mutable workers : unit Domain.t list;
  mutable stop : bool;
}

(* True while this domain is draining a job: a nested [parallel_for] from a
   job body runs inline instead of deadlocking on [submit]. *)
let in_job : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let drain pool j =
  let rec go () =
    if not (Atomic.get j.cancelled) then begin
      let i = Atomic.fetch_and_add j.next 1 in
      if i < j.chunks then begin
        (try j.body i
         with e ->
           Atomic.set j.cancelled true;
           Mutex.lock pool.m;
           if j.failed = None then j.failed <- Some e;
           Mutex.unlock pool.m);
        go ()
      end
    end
  in
  let prev = Domain.DLS.get in_job in
  Domain.DLS.set in_job true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set in_job prev) go

let worker_loop pool =
  let seen = ref 0 in
  let rec next () =
    Mutex.lock pool.m;
    let rec find () =
      if pool.stop then begin
        Mutex.unlock pool.m;
        None
      end
      else
        match pool.job with
        | Some j when pool.epoch <> !seen ->
            seen := pool.epoch;
            if j.slots > 0 then begin
              j.slots <- j.slots - 1;
              j.active <- j.active + 1;
              Mutex.unlock pool.m;
              Some j
            end
            else begin
              Condition.wait pool.work pool.m;
              find ()
            end
        | _ ->
            Condition.wait pool.work pool.m;
            find ()
    in
    match find () with
    | None -> ()
    | Some j ->
        drain pool j;
        Mutex.lock pool.m;
        j.active <- j.active - 1;
        if j.active = 0 then Condition.broadcast pool.idle;
        Mutex.unlock pool.m;
        next ()
  in
  next ()

let make () =
  {
    m = Mutex.create ();
    work = Condition.create ();
    idle = Condition.create ();
    submit = Mutex.create ();
    job = None;
    epoch = 0;
    workers = [];
    stop = false;
  }

(* Grow-only: workers are spawned the first time a job wants them and then
   reused. A freshly spawned worker blocks on [pool.m] until the critical
   section ends, then sleeps on [work]. *)
let ensure pool ~workers =
  Mutex.lock pool.m;
  if pool.stop then begin
    Mutex.unlock pool.m;
    invalid_arg "Pool: used after shutdown"
  end;
  let missing = workers - List.length pool.workers in
  for _ = 1 to missing do
    pool.workers <- Domain.spawn (fun () -> worker_loop pool) :: pool.workers
  done;
  Mutex.unlock pool.m

let size pool =
  Mutex.lock pool.m;
  let s = 1 + List.length pool.workers in
  Mutex.unlock pool.m;
  s

let create ~domains =
  let pool = make () in
  ensure pool ~workers:(clamp domains - 1);
  pool

let shared_mutex = Mutex.create ()
let shared_pool = ref None

let shared () =
  Mutex.lock shared_mutex;
  let p =
    match !shared_pool with
    | Some p -> p
    | None ->
        let p = make () in
        shared_pool := Some p;
        p
  in
  Mutex.unlock shared_mutex;
  p

let parallel_for ?domains pool ~n body =
  let inline () =
    for i = 0 to n - 1 do
      body i
    done
  in
  let d = match domains with None -> size pool | Some d -> clamp d in
  if n <= 0 then ()
  else if d <= 1 || n = 1 || Domain.DLS.get in_job then inline ()
  else begin
    (* No point waking more workers than there are indices beyond the
       caller's first claim. *)
    let want = min (d - 1) (n - 1) in
    ensure pool ~workers:want;
    Mutex.lock pool.submit;
    let j =
      {
        chunks = n;
        next = Atomic.make 0;
        cancelled = Atomic.make false;
        body;
        slots = want;
        active = 0;
        failed = None;
      }
    in
    Mutex.lock pool.m;
    pool.job <- Some j;
    pool.epoch <- pool.epoch + 1;
    Condition.broadcast pool.work;
    Mutex.unlock pool.m;
    drain pool j;
    Mutex.lock pool.m;
    j.slots <- 0;
    while j.active > 0 do
      Condition.wait pool.idle pool.m
    done;
    pool.job <- None;
    Mutex.unlock pool.m;
    Mutex.unlock pool.submit;
    match j.failed with Some e -> raise e | None -> ()
  end

let for_chunks ?domains pool ~chunk ~n body =
  if chunk < 1 then invalid_arg "Pool.for_chunks: chunk < 1";
  if n < 0 then invalid_arg "Pool.for_chunks: n < 0";
  if n > 0 then begin
    let groups = (n + chunk - 1) / chunk in
    parallel_for ?domains pool ~n:groups (fun g ->
        let lo = g * chunk and hi = min n ((g + 1) * chunk) in
        for i = lo to hi - 1 do
          body i
        done)
  end

let map_chunks ?domains pool ~chunk ~n f =
  if chunk < 1 then invalid_arg "Pool.map_chunks: chunk < 1";
  if n < 0 then invalid_arg "Pool.map_chunks: n < 0";
  if n = 0 then [||]
  else begin
    let slots = Array.make n None in
    let groups = (n + chunk - 1) / chunk in
    parallel_for ?domains pool ~n:groups (fun g ->
        let lo = g * chunk and hi = min n ((g + 1) * chunk) in
        for i = lo to hi - 1 do
          slots.(i) <- Some (f i)
        done);
    Array.map (function Some v -> v | None -> assert false) slots
  end

let map ?domains pool ~n f = map_chunks ?domains ~chunk:1 pool ~n f

let shutdown pool =
  Mutex.lock pool.submit;
  Mutex.lock pool.m;
  pool.stop <- true;
  Condition.broadcast pool.work;
  let ws = pool.workers in
  pool.workers <- [];
  Mutex.unlock pool.m;
  List.iter Domain.join ws;
  Mutex.unlock pool.submit
