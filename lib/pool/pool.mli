(** Fixed domain pool for deterministic data-parallel loops.

    Worker domains are spawned once and reused across jobs (OCaml domains are
    heavyweight: each carries a minor heap, and {!Domain.spawn} is ~100 µs).
    One process-wide pool — {!shared} — grows on demand and is what the
    engine, the simulator and the bench harness all schedule onto; idle
    workers block on a condition variable and cost nothing.

    Determinism contract: a job is a function of the index alone, indices are
    claimed from an atomic counter (work stealing), and results are written
    into a preallocated slot per index — so the {e outcome} of
    [parallel_for]/[map] never depends on which domain ran which index, only
    the wall-clock does. Shared mutable state inside the job body is the
    caller's responsibility (see the [Metrics] threading contract).

    The calling domain participates in the job (a pool of [domains:d] uses
    [d - 1] workers plus the caller), and a job submitted from inside another
    job runs inline on the submitting domain — nesting degrades to sequential
    instead of deadlocking on the single job slot. *)

type t

val create : domains:int -> t
(** A private pool with [domains - 1] worker domains ([domains] is clamped to
    [1 .. max_domains]). Prefer {!shared} unless isolation is needed. *)

val shared : unit -> t
(** The process-wide pool. Spawns no workers until a job asks for them. *)

val size : t -> int
(** Domains this pool can bring to bear: workers + the calling domain. *)

val max_domains : int
(** Hard cap on [?domains] (runaway-argument guard, far above any real
    machine this targets). *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware parallelism bound. *)

val parallel_for : ?domains:int -> t -> n:int -> (int -> unit) -> unit
(** [parallel_for pool ~n body] runs [body i] for [0 <= i < n], each index
    exactly once, across at most [domains] domains (caller included; the pool
    grows as needed, default: the pool's current {!size}). Returns when every
    index has completed. The first exception a body raises is re-raised in
    the caller after all domains have drained; remaining unclaimed indices
    are skipped. [domains <= 1], [n <= 1] and nested calls run inline. *)

val map : ?domains:int -> t -> n:int -> (int -> 'a) -> 'a array
(** [map pool ~n f] is [[| f 0; ...; f (n-1) |]] computed with
    {!parallel_for}: results land by index, so the array is identical to the
    sequential one whenever [f] is deterministic per index. *)

val map_chunks : ?domains:int -> t -> chunk:int -> n:int -> (int -> 'a) -> 'a array
(** {!map} with indices claimed [chunk] at a time — amortizes the atomic
    counter when per-index work is tiny. [map] is [map_chunks ~chunk:1]. *)

val for_chunks : ?domains:int -> t -> chunk:int -> n:int -> (int -> unit) -> unit
(** {!parallel_for} with indices claimed [chunk] at a time: domains steal
    whole shards of [chunk] consecutive indices from the atomic counter, so a
    loop over thousands of tiny bodies (the engine's live-session sweep) pays
    one claim per shard instead of one per index. Same determinism contract
    as {!parallel_for}; [chunk >= n] degrades to a single shard (sequential). *)

val shutdown : t -> unit
(** Join this pool's workers. Only meaningful for {!create}d pools (the
    {!shared} pool lives for the process; exiting with idle workers is
    safe). Using the pool after [shutdown] raises [Invalid_argument]. *)
