(* Session-multiplexing agreement engine.

   One engine round = one round of every live session, lock-step. The
   per-session execution path deliberately mirrors Net.Sim.run statement for
   statement (prescribed matrices, rushing-adversary view with the
   session-local round number, byzantine truncation, accounting, delivery) so
   that a multiplexed session is bit-identical to the same session run alone —
   including the PRNG consumption order of stateful adversary strategies,
   which depends on the (sender, recipient) evaluation order. Coalescing is a
   transport-layer overlay: it changes what frames would carry the traffic,
   never what the traffic is. *)

open Net

type 'a spec = {
  sid : int;
  start_round : int;
  protocol : Ctx.t -> 'a Proto.t;
  adversary : Adversary.t;
}

let session ?(start_round = 0) ?(adversary = Adversary.passive) ~sid protocol =
  { sid; start_round; protocol; adversary }

type 'a session_result = {
  r_sid : int;
  r_outputs : 'a option array;
  r_metrics : Metrics.t;
  r_admitted_at : int;
  r_retired_at : int;
}

type aggregate = {
  engine_rounds : int;
  sessions_completed : int;
  peak_live : int;
  frames_sent : int;
  naive_frames : int;
  frames_saved : int;
  frame_bytes : int;
  payload_bytes : int;
  honest_bits_total : int;
}

type 'a outcome = {
  sessions : 'a session_result list;
  aggregate : aggregate;
}

exception Round_limit_exceeded of int

let default_max_rounds = 20_000

let validate_specs specs =
  if specs = [] then invalid_arg "Engine: no sessions";
  let seen = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if s.sid < 0 then invalid_arg "Engine: negative sid";
      if s.start_round < 0 then invalid_arg "Engine: negative start_round";
      if Hashtbl.mem seen s.sid then invalid_arg "Engine: duplicate sid";
      Hashtbl.add seen s.sid ())
    specs

(* Admission order: by start_round, input order within a round — the same
   stable order Net_unix.run_sessions uses, so frame contents agree. *)
let admission_order specs =
  List.stable_sort
    (fun (_, a) (_, b) -> compare a.start_round b.start_round)
    (List.mapi (fun i s -> (i, s)) specs)

let honest_outputs ~corrupt result =
  let out = ref [] in
  Array.iteri
    (fun i o ->
      if not corrupt.(i) then
        match o with
        | Some v -> out := v :: !out
        | None ->
            failwith
              (Printf.sprintf "Engine: party %d did not terminate in session %d"
                 i result.r_sid))
    result.r_outputs;
  List.rev !out

(* ---- shared aggregate assembly ------------------------------------------- *)

(* Peak concurrency from the admission/retirement intervals: a session is
   live during engine rounds [admitted .. retired] iff it consumed at least
   one round. Computed the same way for both backends. *)
let peak_live ~engine_rounds results =
  let peak = ref 0 in
  for r = 0 to engine_rounds - 1 do
    let live =
      List.fold_left
        (fun acc s ->
          if
            s.r_metrics.Metrics.rounds > 0
            && s.r_admitted_at <= r
            && r <= s.r_retired_at
          then acc + 1
          else acc)
        0 results
    in
    peak := max !peak live
  done;
  !peak

(* ---- round-driven core ---------------------------------------------------- *)

(* A live session: one protocol state and label stack per party, plus the
   session-local metrics whose [rounds] field doubles as the adversary's
   round number, exactly as in Sim.run. *)
type 'a live = {
  l_index : int;
  l_sid : int;
  l_adversary : Adversary.t;
  l_states : 'a Proto.t array;
  l_labels : string list array;
  l_metrics : Metrics.t;
  l_admitted : int;
  l_telemetry : Telemetry.t option;
      (* Where this session's span/probe/message events go: the caller's
         recorder when running sequentially, a session-private shard when
         running on the pool (merged back in session-index order at the
         end). Metrics are session-private either way. *)
}

(* Normalize label/probe nodes so that every state is [Done] or [Step].
   [round] is the session-local number of rounds completed — the same stamp
   Sim.run and Net_unix.run_sessions give spans and probes. *)
let rec settle ~telemetry ~corrupt ~sid ~round labels i = function
  | Proto.Push (lb, rest) ->
      labels.(i) <- lb :: labels.(i);
      (match telemetry with
      | Some tm -> Telemetry.push tm ~session:sid ~party:i ~round ~label:lb
      | None -> ());
      settle ~telemetry ~corrupt ~sid ~round labels i rest
  | Proto.Pop rest ->
      (labels.(i) <- (match labels.(i) with [] -> [] | _ :: tl -> tl));
      (match telemetry with
      | Some tm -> Telemetry.pop tm ~session:sid ~party:i ~round
      | None -> ());
      settle ~telemetry ~corrupt ~sid ~round labels i rest
  | Proto.Probe (key, value, rest) ->
      (match telemetry with
      | Some tm when Telemetry.capture_probes tm ->
          Telemetry.probe_event tm ~session:sid ~party:i ~round
            ~byzantine:corrupt.(i) ~key ~value:(value ())
      | Some _ | None -> ());
      settle ~telemetry ~corrupt ~sid ~round labels i rest
  | (Proto.Done _ | Proto.Step _) as s -> s

let honest_running ~corrupt states =
  let running = ref false in
  Array.iteri
    (fun i s ->
      match s with
      | Proto.Step _ when not corrupt.(i) -> running := true
      | _ -> ())
    states;
  !running

(* The round-driven scheduler, parameterized over the byte transport. Every
   backend shares this loop; what varies is only how each round's encoded
   frame matrix reaches the recipients ({!Net.Transport.exchange}). The
   loopback transport hands the pre-decoded entries straight back (the
   simulator); the poll transport pushes the bytes through a nonblocking
   socket mesh and decodes what arrives. Because the frames the engine
   encodes are a pure function of the sessions' traffic, and delivery
   consumes only frame contents plus the local self slot, every transport
   that moves the frames faithfully yields bit-identical outputs, metrics,
   ledger and telemetry. *)
let run_core ?(max_rounds = default_max_rounds) ?(domains = 1) ?trace ?telemetry
    ~transport ~n ~t ~corrupt specs =
  if Array.length corrupt <> n then invalid_arg "Engine: corrupt array size";
  if domains < 1 then invalid_arg "Engine: domains < 1";
  let n_corrupt = Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 corrupt in
  if n_corrupt > t then invalid_arg "Engine: more corruptions than t";
  validate_specs specs;
  let pool = if domains > 1 then Some (Pool.shared ()) else None in
  (* Session-index-ordered telemetry shards, merged into the caller's
     recorder after the run (see [Telemetry.merge]). *)
  let shards = ref [] in
  let pending = ref (admission_order specs) in
  let live = ref [] in
  let finished = ref [] in
  let er = ref 0 in
  let frames_sent = ref 0 in
  let naive_frames = ref 0 in
  let frame_bytes = ref 0 in
  let payload_bytes = ref 0 in
  let retire l =
    (match l.l_telemetry with
    | Some tm ->
        for i = 0 to n - 1 do
          Telemetry.finish tm ~session:l.l_sid ~party:i
            ~round:l.l_metrics.Metrics.rounds
        done
    | None -> ());
    finished :=
      ( l.l_index,
        {
          r_sid = l.l_sid;
          r_outputs =
            Array.map
              (function Proto.Done v -> Some v | _ -> None)
              l.l_states;
          r_metrics = l.l_metrics;
          r_admitted_at = l.l_admitted;
          r_retired_at = !er;
        } )
      :: !finished
  in
  while !pending <> [] || !live <> [] do
    if !er >= max_rounds then raise (Round_limit_exceeded max_rounds);
    (* 0. Admit sessions whose start round has arrived. *)
    let now, later =
      List.partition (fun (_, s) -> s.start_round <= !er) !pending
    in
    pending := later;
    List.iter
      (fun (idx, spec) ->
        let session_telemetry =
          match (telemetry, pool) with
          | Some tm, Some _ ->
              (* Shards must capture exactly what the target recorder would
                 have, or the merged export diverges from the sequential
                 run's — inherit the probe flag. *)
              let shard =
                Telemetry.create ~probes:(Telemetry.capture_probes tm) ()
              in
              shards := (idx, shard) :: !shards;
              Some shard
          | _ -> telemetry
        in
        let labels = Array.make n [] in
        let states =
          Array.init n (fun me -> spec.protocol (Ctx.make ~n ~t ~me))
        in
        Array.iteri
          (fun i s ->
            states.(i) <-
              settle ~telemetry:session_telemetry ~corrupt ~sid:spec.sid
                ~round:0 labels i s)
          states;
        let l =
          {
            l_index = idx;
            l_sid = spec.sid;
            l_adversary = spec.adversary;
            l_states = states;
            l_labels = labels;
            l_metrics = Metrics.create ();
            l_admitted = !er;
            l_telemetry = session_telemetry;
          }
        in
        if honest_running ~corrupt states then live := !live @ [ l ]
        else retire l)
      now;
    (match telemetry with
    | Some tm -> Telemetry.live_sessions tm ~round:!er ~live:(List.length !live)
    | None -> ());
    (* Per ordered pair, the entries of this round's coalesced frame, in
       admission order (matching the unix backend's frame contents). *)
    let bundles = Array.init n (fun _ -> Array.make n []) in
    (* 1–4. Send phase: every live session computes one of its own rounds'
       message matrix, exactly as Sim.run would — adversary PRNG order,
       byzantine truncation and metrics accounting included. Delivery waits
       until the transport has moved the round's frames. Sessions are
       independent within an engine round — each touches only its own
       states, labels, metrics, adversary PRNG and telemetry recorder — so
       this phase shards across the pool; everything that writes shared
       state (trace, bundles, naive-frame counter) is deferred to the
       sequential pass below, replayed in admission order from the sends
       each session captured, so every byte and every event order matches
       the [domains:1] run. *)
    let live_arr = Array.of_list !live in
    let k_live = Array.length live_arr in
    (* Per session, filled by its own step: the round's actual message
       matrix and each sender's innermost label at send time (read before
       delivery mutates the label stacks). *)
    let stepped = Array.make k_live [||] in
    let send_labels = Array.make k_live [||] in
    let naive = Array.make k_live 0 in
    let round_now = !er in
    let step li =
      let l = live_arr.(li) in
      let metrics = l.l_metrics in
      metrics.Metrics.rounds <- metrics.Metrics.rounds + 1;
      let states = l.l_states in
      let prescribed =
        Array.map
          (fun s ->
            match s with
            | Proto.Step (out, _) -> Array.init n out
            | Proto.Done _ -> Array.make n None
            | Proto.Push _ | Proto.Pop _ | Proto.Probe _ -> assert false)
          states
      in
      let view =
        { Adversary.round = metrics.Metrics.rounds; n; t; corrupt; prescribed }
      in
      let actual =
        Array.init n (fun s ->
            if not corrupt.(s) then prescribed.(s)
            else
              Array.init n (fun r ->
                  match l.l_adversary.Adversary.act view ~sender:s ~recipient:r with
                  | Some m when String.length m > Sim.max_byzantine_bytes ->
                      Some (String.sub m 0 Sim.max_byzantine_bytes)
                  | other -> other))
      in
      let labels_now =
        Array.map
          (function [] -> None | lb :: _ -> Some lb)
          l.l_labels
      in
      (* Accounting: per-session metrics see raw payloads (self free). *)
      for s = 0 to n - 1 do
        for r = 0 to n - 1 do
          if s <> r then
            match actual.(s).(r) with
            | None -> ()
            | Some m ->
                (match l.l_telemetry with
                | Some tm ->
                    Telemetry.message tm ~session:l.l_sid ~party:s
                      ~round:metrics.Metrics.rounds ~timeline_round:round_now
                      ~bytes:(String.length m) ~byzantine:corrupt.(s) ()
                | None -> ());
                if corrupt.(s) then
                  Metrics.record_byzantine metrics ~bytes:(String.length m)
                else
                  Metrics.record_honest metrics ~label:labels_now.(s)
                    ~bytes:(String.length m)
        done
      done;
      (* A frame-per-session transport would send one frame per peer from
         every party whose instance is still stepping (counted before
         delivery advances the states). *)
      Array.iter
        (function Proto.Step _ -> naive.(li) <- naive.(li) + (n - 1) | _ -> ())
        states;
      stepped.(li) <- actual;
      send_labels.(li) <- labels_now
    in
    (match pool with
    | Some pool -> Pool.parallel_for ~domains pool ~n:k_live step
    | None ->
        for li = 0 to k_live - 1 do
          step li
        done);
    (* Sequential replay of the shared-state effects, in admission order. *)
    Array.iteri
      (fun li l ->
        let actual = stepped.(li) in
        for s = 0 to n - 1 do
          for r = 0 to n - 1 do
            if s <> r then
              match actual.(s).(r) with
              | None -> ()
              | Some m ->
                  bundles.(s).(r) <- (l.l_sid, m) :: bundles.(s).(r);
                  (match trace with
                  | Some tr ->
                      Trace.record tr
                        {
                          Trace.round = l.l_metrics.Metrics.rounds;
                          src = s;
                          dst = r;
                          bytes = String.length m;
                          byzantine = corrupt.(s);
                          label = send_labels.(li).(s);
                          session = l.l_sid;
                        }
                  | None -> ())
          done
        done;
        naive_frames := !naive_frames + naive.(li))
      live_arr;
    (* 5. Encode one coalesced frame per ordered pair (keep-alive empties
       included), account the ledger, and move the round's bytes through the
       transport. [delivered.(s).(r)] comes back in admission order — from
       the loopback transport it {e is} [entries.(s).(r)]; from a socket
       transport it is what the wire-decoded frame carried, which must agree
       byte for byte. *)
    let frames = Array.make_matrix n n "" in
    let entries = Array.make_matrix n n [] in
    for s = 0 to n - 1 do
      for r = 0 to n - 1 do
        if s <> r then begin
          let es = List.rev bundles.(s).(r) in
          let body = Wire.Frame.encode { Wire.Frame.round = !er; entries = es } in
          entries.(s).(r) <- es;
          frames.(s).(r) <- body;
          incr frames_sent;
          frame_bytes := !frame_bytes + String.length body;
          List.iter
            (fun (_, m) -> payload_bytes := !payload_bytes + String.length m)
            es
        end
      done
    done;
    let delivered = transport.Transport.exchange ~round:!er ~frames ~entries in
    (* Per-edge delivery index, built once on the calling domain and only
       read inside the parallel deliver phase. *)
    let tables =
      Array.init n (fun s ->
          Array.init n (fun r ->
              let tbl = Hashtbl.create 16 in
              List.iter
                (fun (sid, m) -> Hashtbl.replace tbl sid m)
                delivered.(s).(r);
              tbl))
    in
    (* 6. Deliver and advance every live session — the other half of the
       Sim.run round body, parallel for the same reason the send phase is:
       a session touches only its own states, labels and telemetry recorder,
       and reads the shared tables. *)
    let deliver li =
      let l = live_arr.(li) in
      let actual = stepped.(li) in
      let states = l.l_states in
      for i = 0 to n - 1 do
        match states.(i) with
        | Proto.Step (_, k) ->
            let inbox =
              Array.init n (fun s ->
                  if s = i then actual.(i).(i)
                  else Hashtbl.find_opt tables.(s).(i) l.l_sid)
            in
            states.(i) <-
              settle ~telemetry:l.l_telemetry ~corrupt ~sid:l.l_sid
                ~round:l.l_metrics.Metrics.rounds l.l_labels i (k inbox)
        | Proto.Done _ -> ()
        | Proto.Push _ | Proto.Pop _ | Proto.Probe _ -> assert false
      done
    in
    (match pool with
    | Some pool -> Pool.parallel_for ~domains pool ~n:k_live deliver
    | None ->
        for li = 0 to k_live - 1 do
          deliver li
        done);
    (* 7. Retire sessions whose honest parties have all terminated. *)
    live :=
      List.filter
        (fun l ->
          if honest_running ~corrupt l.l_states then true
          else begin
            retire l;
            false
          end)
        !live;
    incr er
  done;
  (* Fold the per-session telemetry shards back into the caller's recorder,
     in session-index order — the export is then byte-identical to the
     sequential run's. *)
  (match telemetry with
  | Some tm ->
      List.iter
        (fun (_, shard) -> Telemetry.merge ~into:tm shard)
        (List.sort (fun (a, _) (b, _) -> compare a b) !shards)
  | None -> ());
  let results =
    List.map snd (List.sort (fun (a, _) (b, _) -> compare a b) !finished)
  in
  let honest_bits_total =
    List.fold_left (fun acc s -> acc + s.r_metrics.Metrics.honest_bits) 0 results
  in
  {
    sessions = results;
    aggregate =
      {
        engine_rounds = !er;
        sessions_completed = List.length results;
        peak_live = peak_live ~engine_rounds:!er results;
        frames_sent = !frames_sent;
        naive_frames = !naive_frames;
        frames_saved = !naive_frames - !frames_sent;
        frame_bytes = !frame_bytes;
        payload_bytes = !payload_bytes;
        honest_bits_total;
      };
  }

(* ---- simulator backend ---------------------------------------------------- *)

let run_sim ?max_rounds ?domains ?trace ?telemetry ~n ~t ~corrupt specs =
  run_core ?max_rounds ?domains ?trace ?telemetry
    ~transport:(Transport.loopback ()) ~n ~t ~corrupt specs

(* ---- poll backend ---------------------------------------------------------- *)

let run_poll ?max_rounds ?domains ?trace ?telemetry ?outbuf ~n ~t ~corrupt
    specs =
  let net = Net_poll.create ?outbuf ~n () in
  Fun.protect
    ~finally:(fun () -> Net_poll.close net)
    (fun () ->
      run_core ?max_rounds ?domains ?trace ?telemetry
        ~transport:(Net_poll.transport net) ~n ~t ~corrupt specs)

(* ---- socket backend ------------------------------------------------------- *)

let run_unix ?t ?telemetry ?domains ~n specs =
  validate_specs specs;
  let sessions =
    Array.of_list (List.map (fun s -> (s.sid, s.start_round, s.protocol)) specs)
  in
  let outs, st = Net_unix.run_sessions ?t ?telemetry ?domains ~n sessions in
  let results =
    List.mapi
      (fun i spec ->
        let rounds = st.Net_unix.mx_session_rounds.(i) in
        let metrics = Metrics.create () in
        metrics.Metrics.rounds <- rounds;
        metrics.Metrics.honest_bits <- 8 * st.Net_unix.mx_session_payload_bytes.(i);
        metrics.Metrics.honest_msgs <- st.Net_unix.mx_session_msgs.(i);
        {
          r_sid = spec.sid;
          r_outputs = Array.map (fun v -> Some v) outs.(i);
          r_metrics = metrics;
          r_admitted_at = spec.start_round;
          r_retired_at =
            (if rounds = 0 then spec.start_round else spec.start_round + rounds - 1);
        })
      specs
  in
  let honest_bits_total =
    List.fold_left (fun acc s -> acc + s.r_metrics.Metrics.honest_bits) 0 results
  in
  {
    sessions = results;
    aggregate =
      {
        engine_rounds = st.Net_unix.mx_rounds;
        sessions_completed = List.length results;
        peak_live = peak_live ~engine_rounds:st.Net_unix.mx_rounds results;
        frames_sent = st.Net_unix.mx_frames;
        naive_frames = st.Net_unix.mx_naive_frames;
        frames_saved = st.Net_unix.mx_naive_frames - st.Net_unix.mx_frames;
        frame_bytes = st.Net_unix.mx_frame_bytes;
        payload_bytes = st.Net_unix.mx_payload_bytes;
        honest_bits_total;
      };
  }
