(* Session-multiplexing agreement engine.

   One engine round = one round of every live session, lock-step. The
   per-session execution path deliberately mirrors Net.Sim.run statement for
   statement (prescribed matrices, rushing-adversary view with the
   session-local round number, byzantine truncation, accounting, delivery) so
   that a multiplexed session is bit-identical to the same session run alone —
   including the PRNG consumption order of stateful adversary strategies,
   which depends on the (sender, recipient) evaluation order. Coalescing is a
   transport-layer overlay: it changes what frames would carry the traffic,
   never what the traffic is. *)

open Net

type 'a spec = {
  sid : int;
  start_round : int;
  protocol : Ctx.t -> 'a Proto.t;
  adversary : Adversary.t;
  setup : [ `Plain | `Authenticated ];
}

let session ?(start_round = 0) ?(adversary = Adversary.passive)
    ?(setup = `Plain) ~sid protocol =
  { sid; start_round; protocol; adversary; setup }

let ctx_maker = function
  | `Plain -> Ctx.make
  | `Authenticated -> Ctx.make_authenticated

type 'a session_result = {
  r_sid : int;
  r_outputs : 'a option array;
  r_metrics : Metrics.t;
  r_admitted_at : int;
  r_retired_at : int;
}

type aggregate = {
  engine_rounds : int;
  sessions_completed : int;
  peak_live : int;
  frames_sent : int;
  naive_frames : int;
  frames_saved : int;
  frame_bytes : int;
  payload_bytes : int;
  honest_bits_total : int;
}

type 'a outcome = {
  sessions : 'a session_result list;
  aggregate : aggregate;
}

exception Round_limit_exceeded of int

let default_max_rounds = 20_000

let validate_specs specs =
  if specs = [] then invalid_arg "Engine: no sessions";
  let seen = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if s.sid < 0 then invalid_arg "Engine: negative sid";
      if s.start_round < 0 then invalid_arg "Engine: negative start_round";
      if Hashtbl.mem seen s.sid then invalid_arg "Engine: duplicate sid";
      Hashtbl.add seen s.sid ())
    specs

(* Admission order: by start_round, input order within a round — the same
   stable order Net_unix.run_sessions uses, so frame contents agree. *)
let admission_order specs =
  List.stable_sort
    (fun (_, a) (_, b) -> compare a.start_round b.start_round)
    (List.mapi (fun i s -> (i, s)) specs)

let honest_outputs ~corrupt result =
  let out = ref [] in
  Array.iteri
    (fun i o ->
      if not corrupt.(i) then
        match o with
        | Some v -> out := v :: !out
        | None ->
            failwith
              (Printf.sprintf "Engine: party %d did not terminate in session %d"
                 i result.r_sid))
    result.r_outputs;
  List.rev !out

(* ---- shared aggregate assembly ------------------------------------------- *)

(* Peak concurrency from the admission/retirement intervals: a session is
   live during engine rounds [admitted .. retired] iff it consumed at least
   one round. Computed the same way for both backends. *)
let peak_live ~engine_rounds results =
  let peak = ref 0 in
  for r = 0 to engine_rounds - 1 do
    let live =
      List.fold_left
        (fun acc s ->
          if
            s.r_metrics.Metrics.rounds > 0
            && s.r_admitted_at <= r
            && r <= s.r_retired_at
          then acc + 1
          else acc)
        0 results
    in
    peak := max !peak live
  done;
  !peak

(* ---- round-driven core ---------------------------------------------------- *)

(* A live session: one protocol state and label stack per party, plus the
   session-local metrics whose [rounds] field doubles as the adversary's
   round number, exactly as in Sim.run. *)
type 'a live = {
  l_index : int;
  l_sid : int;
  l_adversary : Adversary.t;
  l_states : 'a Proto.t array;
  l_labels : string list array;
  l_metrics : Metrics.t;
  l_admitted : int;
  l_telemetry : Telemetry.t option;
      (* Where this session's span/probe/message events go: the caller's
         recorder when running sequentially, a session-private shard when
         running on the pool (merged back in session-index order at the
         end). Metrics are session-private either way. *)
}

(* Normalize label/probe nodes so that every state is [Done] or [Step].
   [round] is the session-local number of rounds completed — the same stamp
   Sim.run and Net_unix.run_sessions give spans and probes. *)
let rec settle ~telemetry ~corrupt ~sid ~round labels i = function
  | Proto.Push (lb, rest) ->
      labels.(i) <- lb :: labels.(i);
      (match telemetry with
      | Some tm -> Telemetry.push tm ~session:sid ~party:i ~round ~label:lb
      | None -> ());
      settle ~telemetry ~corrupt ~sid ~round labels i rest
  | Proto.Pop rest ->
      (labels.(i) <- (match labels.(i) with [] -> [] | _ :: tl -> tl));
      (match telemetry with
      | Some tm -> Telemetry.pop tm ~session:sid ~party:i ~round
      | None -> ());
      settle ~telemetry ~corrupt ~sid ~round labels i rest
  | Proto.Probe (key, value, rest) ->
      (match telemetry with
      | Some tm when Telemetry.capture_probes tm ->
          Telemetry.probe_event tm ~session:sid ~party:i ~round
            ~byzantine:corrupt.(i) ~key ~value:(value ())
      | Some _ | None -> ());
      settle ~telemetry ~corrupt ~sid ~round labels i rest
  | (Proto.Done _ | Proto.Step _) as s -> s

let honest_running ~corrupt states =
  let running = ref false in
  Array.iteri
    (fun i s ->
      match s with
      | Proto.Step _ when not corrupt.(i) -> running := true
      | _ -> ())
    states;
  !running

(* The round-driven scheduler, parameterized over the byte transport. Every
   backend shares this loop; what varies is only how each round's coalesced
   entries reach the recipients ({!Net.Transport.exchange}). The loopback
   transport is the identity on entries (the simulator); the poll transport
   encodes each pair's frame into its own buffers, pushes the bytes through a
   nonblocking socket mesh and decodes what arrives. Because the entries are
   a pure function of the sessions' traffic, and delivery consumes only
   entry contents plus the local self slot, every transport that moves the
   frames faithfully yields bit-identical outputs, metrics, ledger and
   telemetry.

   Steady-state rounds allocate O(live sessions), not O(engine state): the
   live set, the per-slot step captures, the bundle matrix and (for wire
   transports) the delivery index are all preallocated at session capacity
   and reused every round. With a [direct] transport the engine additionally
   fuses each session's send and delivery into a single parallel phase — one
   pool barrier per engine round — which is bit-identical to the split
   schedule because sessions only ever read their own round matrix (see the
   delivery derivation below). *)
let run_core ?(max_rounds = default_max_rounds) ?(domains = 1) ?trace ?telemetry
    ?obs ?on_round ~transport ~n ~t ~corrupt specs =
  if Array.length corrupt <> n then invalid_arg "Engine: corrupt array size";
  if domains < 1 then invalid_arg "Engine: domains < 1";
  let n_corrupt = Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 corrupt in
  if n_corrupt > t then invalid_arg "Engine: more corruptions than t";
  validate_specs specs;
  (* Obs instruments, all recorded from the sequential sections of the loop
     so the deterministic tier is identical for every backend and domain
     count. The sampled round-wall histogram is the only wall-clock reader
     and costs two gettimeofday calls per engine round when enabled. *)
  let obs_frame_h = Option.map (fun o -> Obs.hist o ~tier:Obs.Det "engine/frame_bytes") obs in
  let obs_life_h = Option.map (fun o -> Obs.hist o ~tier:Obs.Det "engine/session_rounds") obs in
  let obs_wall_h = Option.map (fun o -> Obs.hist o ~tier:Obs.Sampled "engine/round_wall_ns") obs in
  let obs_rounds_c = Option.map (fun o -> Obs.counter o ~tier:Obs.Det "engine/rounds") obs in
  let obs_frames_c = Option.map (fun o -> Obs.counter o ~tier:Obs.Det "engine/frames") obs in
  let obs_sessions_c = Option.map (fun o -> Obs.counter o ~tier:Obs.Det "engine/sessions") obs in
  let obs_live_g = Option.map (fun o -> Obs.gauge o ~tier:Obs.Det "engine/live") obs in
  let obs_peak_g = Option.map (fun o -> Obs.gauge o ~tier:Obs.Det "engine/peak_live") obs in
  let record_frame sz =
    match obs_frame_h with Some h -> Obs.Hist.record h sz | None -> ()
  in
  let pool = if domains > 1 then Some (Pool.shared ()) else None in
  (* Session-index-ordered telemetry shards, merged into the caller's
     recorder after the run (see [Telemetry.merge]). *)
  let shards = ref [] in
  let pending = ref (admission_order specs) in
  let finished = ref [] in
  let er = ref 0 in
  let frames_sent = ref 0 in
  let naive_frames = ref 0 in
  let frame_bytes = ref 0 in
  let payload_bytes = ref 0 in
  let cap = List.length specs in
  (* The live set, slot-indexed in admission order; retirement compacts in
     place (stable), so iterating slots 0 .. k_live-1 always visits sessions
     in admission order — the order every sequential replay below relies on. *)
  let live_arr : 'a live option array = Array.make cap None in
  let k_live = ref 0 in
  let live li = match live_arr.(li) with Some l -> l | None -> assert false in
  (* Per-round structures, preallocated at session capacity and reused every
     round: the per-slot step captures, the coalesced bundle matrix, and —
     for wire transports — the per-edge delivery index [edge_slots.(s).(r)]
     plus the sid -> slot map that fills it. Steady-state rounds allocate
     only protocol-level transients (payload strings, continuation spines),
     never per-engine-state structures and never the per-session matrices:
     the prescribed matrix, the byzantine override rows, the delivered inbox
     arrays and the label snapshot are all slot-indexed scratch, allocated
     lazily on a slot's first use and overwritten in full every round. The
     scratch carries no cross-round state, so slot compaction after
     retirement can hand a slot's scratch to a different session untouched.

     Borrowed-buffer contract (see DESIGN.md, "Hot path & allocation
     discipline"): the inbox array passed to a protocol continuation and the
     [Adversary.view] prescribed matrix are owned by the engine and valid
     only until the continuation / the round's last [act] call returns.
     Retaining the *option values* (immutable boxes and payload strings) is
     fine; retaining the *arrays* is not. Every protocol in lib/ consumes
     its inbox strictly before constructing its next [Step], and every
     adversary reads [view] only inside [act]. *)
  let stepped : string option array array array = Array.make cap [||] in
  let prescribed_mats : string option array array array = Array.make cap [||] in
  let actual_rows : string option array array array = Array.make cap [||] in
  (* Byzantine override rows: only touched when the corruption set is
     non-empty, so honest runs never allocate them. *)
  let byz_mats : string option array array array = Array.make cap [||] in
  let inbox_scratch : string option array array array = Array.make cap [||] in
  let send_labels : string option array array = Array.make cap [||] in
  let naive = Array.make cap 0 in
  let bundles : Transport.bundles = Array.make_matrix n n [] in
  (* Direct transports never materialize the per-edge entry lists — the
     frame ledger is computed arithmetically from these per-edge counters
     instead (entry count, header bytes, payload bytes), which drops the
     per-message cons+tuple of the bundle build from the loopback hot path.
     Wire transports still build [bundles]: the bytes have to move. *)
  let edge_cnt = Array.make_matrix n n 0 in
  let edge_hdr = Array.make_matrix n n 0 in
  let edge_psz = Array.make_matrix n n 0 in
  let edge_slots : string option array array array =
    if transport.Transport.direct then [||]
    else Array.init n (fun _ -> Array.init n (fun _ -> Array.make cap None))
  in
  let sid_slot : (int, int) Hashtbl.t = Hashtbl.create (2 * cap) in
  let sid_slot_stale = ref true in
  let refresh_sid_slot () =
    if !sid_slot_stale then begin
      Hashtbl.reset sid_slot;
      for li = 0 to !k_live - 1 do
        Hashtbl.replace sid_slot (live li).l_sid li
      done;
      sid_slot_stale := false
    end
  in
  let retire l =
    (match obs_life_h with
    | Some h -> Obs.Hist.record h l.l_metrics.Metrics.rounds
    | None -> ());
    (match obs_sessions_c with Some c -> Obs.incr c 1 | None -> ());
    (match l.l_telemetry with
    | Some tm ->
        for i = 0 to n - 1 do
          Telemetry.finish tm ~session:l.l_sid ~party:i
            ~round:l.l_metrics.Metrics.rounds
        done
    | None -> ());
    finished :=
      ( l.l_index,
        {
          r_sid = l.l_sid;
          r_outputs =
            Array.map
              (function Proto.Done v -> Some v | _ -> None)
              l.l_states;
          r_metrics = l.l_metrics;
          r_admitted_at = l.l_admitted;
          r_retired_at = !er;
        } )
      :: !finished
  in
  while !pending <> [] || !k_live > 0 do
    if !er >= max_rounds then raise (Round_limit_exceeded max_rounds);
    (* 0. Admit sessions whose start round has arrived. *)
    let now, later =
      List.partition (fun (_, s) -> s.start_round <= !er) !pending
    in
    pending := later;
    List.iter
      (fun (idx, spec) ->
        let session_telemetry =
          match (telemetry, pool) with
          | Some tm, Some _ ->
              (* Shards must capture exactly what the target recorder would
                 have, or the merged export diverges from the sequential
                 run's — inherit the probe flag. *)
              let shard =
                Telemetry.create ~probes:(Telemetry.capture_probes tm) ()
              in
              shards := (idx, shard) :: !shards;
              Some shard
          | _ -> telemetry
        in
        let labels = Array.make n [] in
        let states =
          Array.init n (fun me -> spec.protocol (ctx_maker spec.setup ~n ~t ~me))
        in
        Array.iteri
          (fun i s ->
            states.(i) <-
              settle ~telemetry:session_telemetry ~corrupt ~sid:spec.sid
                ~round:0 labels i s)
          states;
        let l =
          {
            l_index = idx;
            l_sid = spec.sid;
            l_adversary = spec.adversary;
            l_states = states;
            l_labels = labels;
            l_metrics = Metrics.create ();
            l_admitted = !er;
            l_telemetry = session_telemetry;
          }
        in
        if honest_running ~corrupt states then begin
          live_arr.(!k_live) <- Some l;
          incr k_live;
          sid_slot_stale := true
        end
        else retire l)
      now;
    (match telemetry with
    | Some tm -> Telemetry.live_sessions tm ~round:!er ~live:!k_live
    | None -> ());
    (match obs_live_g with Some g -> Obs.set_gauge g !k_live | None -> ());
    (match obs_peak_g with Some g -> Obs.max_gauge g !k_live | None -> ());
    let wall_t0 =
      match obs_wall_h with Some _ -> Unix.gettimeofday () | None -> 0.0
    in
    (* 1–4. Send phase: every live session computes one of its own rounds'
       message matrix, exactly as Sim.run would — adversary PRNG order,
       byzantine truncation and metrics accounting included. Sessions are
       independent within an engine round — each touches only its own
       states, labels, metrics, adversary PRNG and telemetry recorder — so
       this phase shards across the pool in chunks of consecutive slots;
       everything that writes shared state (trace, bundles, naive-frame
       counter) is deferred to the sequential pass below, replayed in
       admission order from the sends each session captured, so every byte
       and every event order matches the [domains:1] run. *)
    let k_now = !k_live in
    let round_now = !er in
    let step li =
      let l = live li in
      let metrics = l.l_metrics in
      metrics.Metrics.rounds <- metrics.Metrics.rounds + 1;
      let states = l.l_states in
      if prescribed_mats.(li) == [||] then begin
        prescribed_mats.(li) <- Array.make_matrix n n None;
        actual_rows.(li) <- Array.make n [||];
        send_labels.(li) <- Array.make n None
      end;
      let prescribed = prescribed_mats.(li) in
      for i = 0 to n - 1 do
        match states.(i) with
        | Proto.Step (out, _) ->
            let row = prescribed.(i) in
            for r = 0 to n - 1 do
              row.(r) <- out r
            done
        | Proto.Done _ -> Array.fill prescribed.(i) 0 n None
        | Proto.Push _ | Proto.Pop _ | Proto.Probe _ -> assert false
      done;
      (* Honest rows of [actual] alias the prescribed matrix (both are
         consumed read-only within this round); corrupt rows go through the
         per-slot byzantine scratch so the adversary's view of every
         prescribed row stays intact while overrides are computed. *)
      let actual = actual_rows.(li) in
      if n_corrupt = 0 then Array.blit prescribed 0 actual 0 n
      else begin
        let view =
          { Adversary.round = metrics.Metrics.rounds; n; t; corrupt; prescribed }
        in
        if byz_mats.(li) == [||] then byz_mats.(li) <- Array.make_matrix n n None;
        let byz = byz_mats.(li) in
        for s = 0 to n - 1 do
          if not corrupt.(s) then actual.(s) <- prescribed.(s)
          else begin
            let row = byz.(s) in
            for r = 0 to n - 1 do
              row.(r) <-
                (match l.l_adversary.Adversary.act view ~sender:s ~recipient:r with
                | Some m when String.length m > Sim.max_byzantine_bytes ->
                    Some (String.sub m 0 Sim.max_byzantine_bytes)
                | other -> other)
            done;
            actual.(s) <- row
          end
        done
      end;
      let labels_now = send_labels.(li) in
      for i = 0 to n - 1 do
        match (l.l_labels.(i), labels_now.(i)) with
        | [], None -> ()
        | lb :: _, Some prev when prev == lb -> ()
        | [], Some _ -> labels_now.(i) <- None
        | lb :: _, _ -> labels_now.(i) <- Some lb
      done;
      (* Accounting: per-session metrics see raw payloads (self free). *)
      for s = 0 to n - 1 do
        for r = 0 to n - 1 do
          if s <> r then
            match actual.(s).(r) with
            | None -> ()
            | Some m ->
                (match l.l_telemetry with
                | Some tm ->
                    Telemetry.message tm ~session:l.l_sid ~party:s
                      ~round:metrics.Metrics.rounds ~timeline_round:round_now
                      ~bytes:(String.length m) ~byzantine:corrupt.(s) ()
                | None -> ());
                if corrupt.(s) then
                  Metrics.record_byzantine metrics ~bytes:(String.length m)
                else
                  Metrics.record_honest metrics ~label:labels_now.(s)
                    ~bytes:(String.length m)
        done
      done;
      (* A frame-per-session transport would send one frame per peer from
         every party whose instance is still stepping (counted before
         delivery advances the states). *)
      naive.(li) <- 0;
      Array.iter
        (function Proto.Step _ -> naive.(li) <- naive.(li) + (n - 1) | _ -> ())
        states;
      stepped.(li) <- actual
    in
    (* 6. Deliver and advance a live session — the other half of the Sim.run
       round body, parallel for the same reason the send phase is: a session
       touches only its own states, labels and telemetry recorder, and reads
       shared structures no one writes concurrently. With a direct transport
       the inbox comes straight from the session's own round matrix:
       [actual.(s).(i)] for [s <> i] is [Some m] exactly when the round's
       entries carried [(sid, m)] on edge [s -> i], which is what the
       per-edge index would answer for this sid — so fusing step and deliver
       into one phase (below) is observationally identical to the split
       schedule. With a wire transport the inbox reads the slot-indexed
       delivery index filled from the decoded entries. *)
    (* The inbox handed to a continuation is per-(slot, party) scratch,
       refilled here every round — borrowed by the protocol for the duration
       of the continuation (the contract documented above and in proto.mli). *)
    let inbox_for li i =
      if inbox_scratch.(li) == [||] then
        inbox_scratch.(li) <- Array.init n (fun _ -> Array.make n None);
      inbox_scratch.(li).(i)
    in
    let deliver_direct li =
      let l = live li in
      let actual = stepped.(li) in
      let states = l.l_states in
      for i = 0 to n - 1 do
        match states.(i) with
        | Proto.Step (_, k) ->
            let inbox = inbox_for li i in
            for s = 0 to n - 1 do
              inbox.(s) <- actual.(s).(i)
            done;
            states.(i) <-
              settle ~telemetry:l.l_telemetry ~corrupt ~sid:l.l_sid
                ~round:l.l_metrics.Metrics.rounds l.l_labels i (k inbox)
        | Proto.Done _ -> ()
        | Proto.Push _ | Proto.Pop _ | Proto.Probe _ -> assert false
      done
    in
    let deliver_wire li =
      let l = live li in
      let actual = stepped.(li) in
      let states = l.l_states in
      for i = 0 to n - 1 do
        match states.(i) with
        | Proto.Step (_, k) ->
            let inbox = inbox_for li i in
            for s = 0 to n - 1 do
              inbox.(s) <-
                (if s = i then actual.(i).(i) else edge_slots.(s).(i).(li))
            done;
            states.(i) <-
              settle ~telemetry:l.l_telemetry ~corrupt ~sid:l.l_sid
                ~round:l.l_metrics.Metrics.rounds l.l_labels i (k inbox)
        | Proto.Done _ -> ()
        | Proto.Push _ | Proto.Pop _ | Proto.Probe _ -> assert false
      done
    in
    let run_phase body =
      match pool with
      | Some pool ->
          (* Chunked claims: a few shards per domain amortizes the atomic
             counter while leaving enough shards to steal. *)
          let chunk = max 1 (k_now / (domains * 4)) in
          Pool.for_chunks ~domains pool ~chunk ~n:k_now body
      | None ->
          for li = 0 to k_now - 1 do
            body li
          done
    in
    if transport.Transport.direct then
      (* Fused round: one parallel phase, one barrier. *)
      run_phase (fun li ->
          step li;
          deliver_direct li)
    else run_phase step;
    (* Sequential replay of the shared-state effects, in admission order.
       Bundle lists are built admission-ordered directly by prepending in
       reverse slot order (the old build-reversed-then-[List.rev] allocated
       a second list per edge per round). Direct transports only tally the
       per-edge counters — nothing consumes entry lists on that path. *)
    (if transport.Transport.direct then begin
       for s = 0 to n - 1 do
         for r = 0 to n - 1 do
           edge_cnt.(s).(r) <- 0;
           edge_hdr.(s).(r) <- 0;
           edge_psz.(s).(r) <- 0
         done
       done;
       for li = k_now - 1 downto 0 do
         let l = live li in
         let actual = stepped.(li) in
         for s = 0 to n - 1 do
           for r = 0 to n - 1 do
             if s <> r then
               match actual.(s).(r) with
               | None -> ()
               | Some m ->
                   let len = String.length m in
                   edge_cnt.(s).(r) <- edge_cnt.(s).(r) + 1;
                   edge_hdr.(s).(r) <-
                     edge_hdr.(s).(r) + Wire.varint_size l.l_sid
                     + Wire.varint_size len;
                   edge_psz.(s).(r) <- edge_psz.(s).(r) + len
           done
         done;
         naive_frames := !naive_frames + naive.(li)
       done
     end
     else begin
       for s = 0 to n - 1 do
         for r = 0 to n - 1 do
           bundles.(s).(r) <- []
         done
       done;
       for li = k_now - 1 downto 0 do
         let l = live li in
         let actual = stepped.(li) in
         for s = 0 to n - 1 do
           for r = 0 to n - 1 do
             if s <> r then
               match actual.(s).(r) with
               | None -> ()
               | Some m -> bundles.(s).(r) <- (l.l_sid, m) :: bundles.(s).(r)
           done
         done;
         naive_frames := !naive_frames + naive.(li)
       done
     end);
    (match trace with
    | None -> ()
    | Some tr ->
        for li = 0 to k_now - 1 do
          let l = live li in
          let actual = stepped.(li) in
          for s = 0 to n - 1 do
            for r = 0 to n - 1 do
              if s <> r then
                match actual.(s).(r) with
                | None -> ()
                | Some m ->
                    Trace.record tr
                      {
                        Trace.round = l.l_metrics.Metrics.rounds;
                        src = s;
                        dst = r;
                        bytes = String.length m;
                        byzantine = corrupt.(s);
                        label = send_labels.(li).(s);
                        session = l.l_sid;
                      }
            done
          done
        done);
    (* 5. Account one coalesced frame per ordered pair (keep-alive empties
       included). On the wire path this reads straight off the entry lists —
       {!Wire.Frame.encoded_size} is differentially tested to equal the
       encoding's length, so the ledger matches the old encode-then-measure
       byte for byte without the engine ever materializing a frame. On the
       direct path the same sum comes from the per-edge counters: a frame is
       varint round + varint count + per entry (varint sid + varint len +
       payload), exactly the header/payload bytes accumulated above. *)
    if transport.Transport.direct then
      for s = 0 to n - 1 do
        for r = 0 to n - 1 do
          if s <> r then begin
            incr frames_sent;
            let sz =
              Wire.varint_size round_now
              + Wire.varint_size edge_cnt.(s).(r)
              + edge_hdr.(s).(r) + edge_psz.(s).(r)
            in
            record_frame sz;
            frame_bytes := !frame_bytes + sz;
            payload_bytes := !payload_bytes + edge_psz.(s).(r)
          end
        done
      done
    else
      for s = 0 to n - 1 do
        for r = 0 to n - 1 do
          if s <> r then begin
            let es = bundles.(s).(r) in
            incr frames_sent;
            let sz =
              Wire.Frame.encoded_size { Wire.Frame.round = round_now; entries = es }
            in
            record_frame sz;
            frame_bytes := !frame_bytes + sz;
            List.iter
              (fun (_, m) -> payload_bytes := !payload_bytes + String.length m)
              es
          end
        done
      done;
    (match obs_frames_c with
    | Some c -> Obs.incr c (n * (n - 1))
    | None -> ());
    if transport.Transport.direct then
      (* Delivery already happened in the fused phase; the exchange is the
         identity, called so the transport still observes every round. *)
      ignore (transport.Transport.exchange ~round:round_now ~entries:bundles)
    else begin
      (* Move the round's bytes. [delivered.(s).(r)] comes back in admission
         order — what the wire-decoded frame carried, which must agree byte
         for byte with [bundles.(s).(r)]. The returned matrix is borrowed:
         consumed (index filled, delivery run, index cleared) before the
         next exchange. *)
      let delivered =
        transport.Transport.exchange ~round:round_now ~entries:bundles
      in
      refresh_sid_slot ();
      (* [Hashtbl.find] + [Not_found]: the lookup hits for every live
         session's message, and [find_opt]'s [Some] box per message is pure
         allocation on the hot path (misses — messages for already-retired
         sids — are the rare case). *)
      for s = 0 to n - 1 do
        for r = 0 to n - 1 do
          if s <> r then
            List.iter
              (fun (sid, m) ->
                match Hashtbl.find sid_slot sid with
                | li -> edge_slots.(s).(r).(li) <- Some m
                | exception Not_found -> ())
              delivered.(s).(r)
        done
      done;
      run_phase deliver_wire;
      (* Clear only the slots this round touched, by re-walking the
         delivered lists — O(messages), not O(capacity). *)
      for s = 0 to n - 1 do
        for r = 0 to n - 1 do
          if s <> r then
            List.iter
              (fun (sid, _) ->
                match Hashtbl.find sid_slot sid with
                | li -> edge_slots.(s).(r).(li) <- None
                | exception Not_found -> ())
              delivered.(s).(r)
        done
      done
    end;
    (* 7. Retire sessions whose honest parties have all terminated; stable
       in-place compaction keeps slot order = admission order. *)
    let w = ref 0 in
    for li = 0 to !k_live - 1 do
      let l = live li in
      if honest_running ~corrupt l.l_states then begin
        if !w <> li then live_arr.(!w) <- live_arr.(li);
        incr w
      end
      else begin
        retire l;
        sid_slot_stale := true
      end
    done;
    for li = !w to !k_live - 1 do
      live_arr.(li) <- None
    done;
    k_live := !w;
    (* Post-retirement, so the gauge drains to 0 when the last session
       completes rather than holding the final round's entry count. *)
    (match obs_live_g with Some g -> Obs.set_gauge g !k_live | None -> ());
    (match obs_rounds_c with Some c -> Obs.incr c 1 | None -> ());
    (match obs_wall_h with
    | Some h ->
        Obs.Hist.record h
          (int_of_float ((Unix.gettimeofday () -. wall_t0) *. 1e9))
    | None -> ());
    (match on_round with
    | Some f -> f ~round:round_now ~live:!k_live
    | None -> ());
    incr er
  done;
  (* Fold the per-session telemetry shards back into the caller's recorder,
     in session-index order — the export is then byte-identical to the
     sequential run's. *)
  (match telemetry with
  | Some tm ->
      List.iter
        (fun (_, shard) -> Telemetry.merge ~into:tm shard)
        (List.sort (fun (a, _) (b, _) -> compare a b) !shards)
  | None -> ());
  let results =
    List.map snd (List.sort (fun (a, _) (b, _) -> compare a b) !finished)
  in
  let honest_bits_total =
    List.fold_left (fun acc s -> acc + s.r_metrics.Metrics.honest_bits) 0 results
  in
  {
    sessions = results;
    aggregate =
      {
        engine_rounds = !er;
        sessions_completed = List.length results;
        peak_live = peak_live ~engine_rounds:!er results;
        frames_sent = !frames_sent;
        naive_frames = !naive_frames;
        frames_saved = !naive_frames - !frames_sent;
        frame_bytes = !frame_bytes;
        payload_bytes = !payload_bytes;
        honest_bits_total;
      };
  }

(* ---- simulator backend ---------------------------------------------------- *)

let sampler_hook ?sampler ~sample_every ?poll_stats () =
  match sampler with
  | None -> None
  | Some smp ->
      let every = max 1 sample_every in
      Some
        (fun ~round ~live ->
          if round mod every = 0 then
            let poll =
              match poll_stats with Some f -> Some (f ()) | None -> None
            in
            Obs.Sampler.record smp ~round ~live ?poll ())

let run_sim ?max_rounds ?domains ?trace ?telemetry ?obs ?sampler
    ?(sample_every = 16) ~n ~t ~corrupt specs =
  let on_round = sampler_hook ?sampler ~sample_every () in
  run_core ?max_rounds ?domains ?trace ?telemetry ?obs ?on_round
    ~transport:(Transport.loopback ()) ~n ~t ~corrupt specs

(* ---- poll backend ---------------------------------------------------------- *)

let run_poll ?max_rounds ?domains ?trace ?telemetry ?obs ?sampler
    ?(sample_every = 16) ?control ?outbuf ~n ~t ~corrupt specs =
  let net = Net_poll.create ?outbuf ~n () in
  (match obs with
  | Some o -> Net_poll.set_sink net (Some (Obs.poll_sink o))
  | None -> ());
  Net_poll.set_control net control;
  let on_round =
    sampler_hook ?sampler ~sample_every
      ~poll_stats:(fun () -> Net_poll.stats net)
      ()
  in
  Fun.protect
    ~finally:(fun () -> Net_poll.close net)
    (fun () ->
      run_core ?max_rounds ?domains ?trace ?telemetry ?obs ?on_round
        ~transport:(Net_poll.transport net) ~n ~t ~corrupt specs)

(* ---- socket backend ------------------------------------------------------- *)

let run_unix ?t ?telemetry ?domains ~n specs =
  validate_specs specs;
  (* The socket mesh builds every session's contexts with one constructor;
     a mix would silently run some sessions under the wrong bound check. *)
  let setup =
    match specs with
    | [] -> `Plain
    | s :: rest ->
        if List.for_all (fun s' -> s'.setup = s.setup) rest then s.setup
        else invalid_arg "Engine.run_unix: sessions mix `Plain and `Authenticated setups"
  in
  let sessions =
    Array.of_list (List.map (fun s -> (s.sid, s.start_round, s.protocol)) specs)
  in
  let outs, st = Net_unix.run_sessions ~setup ?t ?telemetry ?domains ~n sessions in
  let results =
    List.mapi
      (fun i spec ->
        let rounds = st.Net_unix.mx_session_rounds.(i) in
        let metrics = Metrics.create () in
        metrics.Metrics.rounds <- rounds;
        metrics.Metrics.honest_bits <- 8 * st.Net_unix.mx_session_payload_bytes.(i);
        metrics.Metrics.honest_msgs <- st.Net_unix.mx_session_msgs.(i);
        {
          r_sid = spec.sid;
          r_outputs = Array.map (fun v -> Some v) outs.(i);
          r_metrics = metrics;
          r_admitted_at = spec.start_round;
          r_retired_at =
            (if rounds = 0 then spec.start_round else spec.start_round + rounds - 1);
        })
      specs
  in
  let honest_bits_total =
    List.fold_left (fun acc s -> acc + s.r_metrics.Metrics.honest_bits) 0 results
  in
  {
    sessions = results;
    aggregate =
      {
        engine_rounds = st.Net_unix.mx_rounds;
        sessions_completed = List.length results;
        peak_live = peak_live ~engine_rounds:st.Net_unix.mx_rounds results;
        frames_sent = st.Net_unix.mx_frames;
        naive_frames = st.Net_unix.mx_naive_frames;
        frames_saved = st.Net_unix.mx_naive_frames - st.Net_unix.mx_frames;
        frame_bytes = st.Net_unix.mx_frame_bytes;
        payload_bytes = st.Net_unix.mx_payload_bytes;
        honest_bits_total;
      };
  }
