(** Session-multiplexing agreement engine: many concurrent protocol
    instances over one transport.

    Every entry point below runs [K] independent {e sessions} — each an
    ['a Net.Proto.t] instance executed by the same [n] parties — inside one
    round-driven scheduler. Each engine round, every live session advances by
    exactly one of its own rounds, and all sessions' traffic between an
    ordered pair of parties is coalesced into a single {!Wire.Frame}, so the
    per-frame transport cost is paid once per pair per round regardless of
    how many sessions are live. This is how the deployments from the paper's
    introduction (blockchain oracles, transaction ordering) amortize
    transport cost across thousands of concurrent agreement instances.

    Sessions are admitted from an arrival queue when their [start_round]
    arrives, run at independent round offsets (a session admitted at engine
    round [a] executes its own round [r] during engine round [a + r - 1]),
    and retire as they terminate without perturbing the others.

    Per-session semantics are {e exactly} those of a standalone
    {!Net.Sim.run}: each session has its own adversary instance, which sees
    the session-local round number and only that session's prescribed
    messages, and per-session metrics count the raw payload bytes — so a
    multiplexed session's outputs and metrics are bit-identical to the same
    session run sequentially (asserted by [test/test_engine.ml]). Coalescing
    is accounted separately, at the transport layer. *)

type 'a spec = {
  sid : int;  (** Session id carried in frames; distinct, non-negative. *)
  start_round : int;  (** Engine round (0-based) at which to admit. *)
  protocol : Net.Ctx.t -> 'a Net.Proto.t;
  adversary : Net.Adversary.t;
      (** Simulator backend only; supply a fresh instance per session —
          strategies carry PRNG state. Ignored by {!run_unix}. *)
  setup : [ `Plain | `Authenticated ];
      (** Which context constructor the session's parties get:
          {!Net.Ctx.make} (t < n/3) or {!Net.Ctx.make_authenticated}
          (t < n/2, for protocols on a cryptographic setup such as the
          [Auth] library's). Per-session under [run_sim]/[run_poll];
          {!run_unix} requires all sessions to agree. *)
}

val session :
  ?start_round:int ->
  ?adversary:Net.Adversary.t ->
  ?setup:[ `Plain | `Authenticated ] ->
  sid:int ->
  (Net.Ctx.t -> 'a Net.Proto.t) ->
  'a spec
(** Spec builder; [start_round] defaults to 0, [adversary] to
    {!Net.Adversary.passive}, [setup] to [`Plain]. *)

type 'a session_result = {
  r_sid : int;
  r_outputs : 'a option array;
      (** Per party, as in {!Net.Sim.outcome}: [Some] once the party's
          instance terminated ([run_unix] always fills every slot). *)
  r_metrics : Net.Metrics.t;
      (** Session-local rounds, honest bits, per-label bits — identical to a
          sequential run of the same session. [run_unix] fills rounds,
          honest bits and honest messages; label attribution is
          simulator-only. *)
  r_admitted_at : int;  (** Engine round at which the session was admitted. *)
  r_retired_at : int;
      (** Engine round of the session's last step ([= r_admitted_at] for
          zero-round sessions). *)
}

type aggregate = {
  engine_rounds : int;
  sessions_completed : int;
  peak_live : int;  (** Maximum number of concurrently live sessions. *)
  frames_sent : int;  (** Coalesced frames: one per ordered pair per round. *)
  naive_frames : int;
      (** Frames a frame-per-session transport would have sent. *)
  frames_saved : int;  (** [naive_frames - frames_sent]. *)
  frame_bytes : int;
      (** Encoded {!Wire.Frame} bytes on the wire — includes session-id tags
          and, in adversarial simulator runs, byzantine payloads. *)
  payload_bytes : int;  (** Raw session payload bytes inside the frames. *)
  honest_bits_total : int;  (** Sum of the sessions' honest bits. *)
}

type 'a outcome = {
  sessions : 'a session_result list;  (** In input order. *)
  aggregate : aggregate;
}

exception Round_limit_exceeded of int
(** Engine-round tripwire, as in {!Net.Sim}. *)

val default_max_rounds : int

val run_core :
  ?max_rounds:int ->
  ?domains:int ->
  ?trace:Net.Trace.t ->
  ?telemetry:Telemetry.t ->
  ?obs:Obs.t ->
  ?on_round:(round:int -> live:int -> unit) ->
  transport:Net.Transport.t ->
  n:int ->
  t:int ->
  corrupt:bool array ->
  'a spec list ->
  'a outcome
(** The round-driven scheduler behind {!run_sim} and {!run_poll},
    parameterized over the byte transport. Each engine round the core
    computes every live session's sends (the simulator semantics, adversary
    PRNG order included), coalesces them into one entry list per ordered
    pair, accounts the frame bytes via {!Wire.Frame.encoded_size}, hands the
    entry matrix to {!Net.Transport.exchange}, and delivers from what came
    back. A [direct] transport (the loopback) additionally licenses the
    fused schedule: send and delivery run as one parallel phase — a single
    pool barrier per engine round. Any transport that moves the frames
    faithfully yields bit-identical outputs, per-session metrics, aggregate
    ledger and telemetry — the property the cross-backend tests pin down.
    Every per-round structure (live set, step captures, bundle matrix,
    delivery index) is preallocated at session capacity and reused, so
    steady-state rounds allocate only per-session transients. Raises like
    {!run_sim}; transport failures propagate as the transport's own
    exceptions.

    [obs] attaches a {!Obs} registry. Deterministic tier (recorded from the
    sequential sections only, so identical across transports and domain
    counts): histograms [engine/frame_bytes] (every coalesced frame's
    encoded size — the histogram sum equals the ledger's [frame_bytes]) and
    [engine/session_rounds] (session lifetimes at retirement), counters
    [engine/rounds], [engine/frames], [engine/sessions], gauges
    [engine/live] and [engine/peak_live]. Sampled tier:
    [engine/round_wall_ns], the wall-clock engine-round latency. [on_round]
    runs after each engine round's retirement with the round number and
    remaining live count — the hook the periodic {!Obs.Sampler} rides. *)

val run_sim :
  ?max_rounds:int ->
  ?domains:int ->
  ?trace:Net.Trace.t ->
  ?telemetry:Telemetry.t ->
  ?obs:Obs.t ->
  ?sampler:Obs.Sampler.t ->
  ?sample_every:int ->
  n:int ->
  t:int ->
  corrupt:bool array ->
  'a spec list ->
  'a outcome
(** Execute every session in the deterministic lock-step simulator, with the
    per-session rushing adversaries controlling the corrupted parties.
    [trace] records every sent message with its session id. [telemetry]
    attaches a recorder: each session records spans and probes under its
    [sid] at session-local rounds completed, messages additionally carry the
    engine round as their timeline round, and the live-session count is
    recorded once per engine round — summing a session's span bits
    reproduces that session's [Metrics.honest_bits] exactly, and the
    conventions match {!Net_unix.run_sessions} session-for-session.

    [domains] (default 1) shards the live sessions across the shared {!Pool}
    at every engine-round barrier. Sequential-equals-parallel bit-identity is
    a hard invariant: each session steps on one domain with its own states,
    adversary PRNG, [Metrics.t] and telemetry shard, while everything shared
    — admission, traces, frame assembly, the aggregate ledger — stays on the
    calling domain in admission order, and the telemetry shards are merged
    back in session-index order ({!Telemetry.merge}); outputs, per-session
    metrics, the aggregate ledger and the telemetry JSONL are byte-identical
    for every domain count (asserted by [test/test_multicore.ml]).

    [obs] instruments the run (see {!run_core}). [sampler] records an
    {!Obs.Sampler} snapshot every [sample_every] (default 16) engine
    rounds.

    Raises [Invalid_argument] on inconsistent parameters (corrupt-array
    size, more corruptions than [t], duplicate or negative sids, negative
    start rounds, empty session list, [domains < 1]). *)

val run_poll :
  ?max_rounds:int ->
  ?domains:int ->
  ?trace:Net.Trace.t ->
  ?telemetry:Telemetry.t ->
  ?obs:Obs.t ->
  ?sampler:Obs.Sampler.t ->
  ?sample_every:int ->
  ?control:(Unix.file_descr * (unit -> unit)) ->
  ?outbuf:int ->
  n:int ->
  t:int ->
  corrupt:bool array ->
  'a spec list ->
  'a outcome
(** Execute every session over the single-process event-driven socket mesh
    ({!Net_poll}): nonblocking fds, one [select] loop, bounded per-connection
    outbound rings with explicit backpressure. Full simulator semantics —
    per-session adversaries, traces, telemetry — with the round's bytes
    actually moving through sockets; outputs, per-session metrics, the
    aggregate ledger and the telemetry JSONL are byte-identical to
    {!run_sim} on the same inputs (asserted by [test/test_poll.ml]).
    [outbuf] is the per-connection ring capacity (default 64 KiB) — shrink
    it to exercise parking. The mesh is torn down on every exit path.

    [obs] additionally installs {!Obs.poll_sink} on the mesh, so select
    waits and write stalls land in the sampled-tier histograms. [sampler]
    snapshots every [sample_every] (default 16) engine rounds, with the
    mesh's {!Net_poll.stats} attached. [control] is forwarded to
    {!Net_poll.set_control} — pass [(Obs.Endpoint.fd ep, fun () ->
    Obs.Endpoint.service ep)] to serve the live stats endpoint from inside
    the select loop. *)

val run_unix :
  ?t:int ->
  ?telemetry:Telemetry.t ->
  ?domains:int ->
  n:int ->
  'a spec list ->
  'a outcome
(** Execute every session over one shared Unix socket mesh
    ({!Net_unix.run_sessions}): one thread per party, one coalesced frame
    per ordered pair per engine round. Honest executions only — the specs'
    adversaries are ignored. [domains] parallelizes each party's per-round
    session advances on the shared {!Pool} (bit-identical, see
    {!Net_unix.run_sessions}). Outputs, per-session rounds and honest bits
    are bit-identical to {!run_sim} with no corruptions (asserted by the
    cross-backend tests). *)

val honest_outputs : corrupt:bool array -> 'a session_result -> 'a list
(** Honest parties' outputs of one session, in party order; raises [Failure]
    if an honest party did not terminate (cannot happen unless [max_rounds]
    was abused). *)
