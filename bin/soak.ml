(* soak — duration-bounded robustness soak of the session engine.

   Runs engine waves until the wall-clock budget is spent. Every wave draws
   a random configuration (n, t, corrupt set) and a batch of sessions with
   mixed protocols, workload families, input attacks and message
   adversaries, admitted at staggered rounds so sessions arrive and retire
   mid-run. Each wave executes on the chosen backend (the event-driven poll
   transport by default), every session is checked against Definition 1,
   telemetry is sampled on a subset of waves (exported, sized, dropped —
   never accumulated), and peak RSS is asserted against a ceiling after
   every wave. Any violation prints a reproduction line (everything derives
   from the wave seed) and fails the process.

     dune exec bin/soak.exe                        (60 s, poll backend)
     dune exec bin/soak.exe -- --smoke             (~10 s, for make check)
     dune exec bin/soak.exe -- --duration 600 --backend sim --seed 7 *)

open Net

type cfg = {
  duration : float;
  backend : string;
  seed : int;
  max_sessions : int;
  max_rss_mb : int;
  telemetry_every : int;
  obs_socket : string option;
      (* live stats endpoint path; served from inside the poll loop while a
         wave runs and between waves otherwise *)
}

let default_cfg =
  {
    duration = 60.0;
    backend = "poll";
    seed = 1;
    max_sessions = 48;
    max_rss_mb = 2048;
    telemetry_every = 5;
    obs_socket = None;
  }

let usage oc =
  output_string oc
    "usage: soak [--duration SECS] [--smoke] [--backend sim|poll] [--seed N]\n\
    \            [--sessions K] [--max-rss-mb MB] [--telemetry-every N]\n\
    \            [--obs-socket PATH]\n\n\
     Duration-bounded engine soak: mixed workloads, staggered admission and\n\
     retirement, Definition 1 checked per session, telemetry sampled (not\n\
     stored), an obs health snapshot printed per wave, peak RSS asserted\n\
     after every wave.\n\n\
    \  --duration SECS      wall-clock budget (default 60)\n\
    \  --smoke              ~10 s run for CI (duration 8, smaller waves)\n\
    \  --backend NAME       sim | poll (default poll)\n\
    \  --seed N             master seed (default 1)\n\
    \  --sessions K         max sessions per wave (default 48)\n\
    \  --max-rss-mb MB      peak-RSS ceiling (default 2048)\n\
    \  --telemetry-every N  sample telemetry every Nth wave (default 5)\n\
    \  --obs-socket PATH    serve the live stats dump on a Unix socket at\n\
    \                       PATH (read it with ca_cli obs --socket PATH)\n"

let bad fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "error: %s\n" msg;
      usage stderr;
      exit 2)
    fmt

let parse_int name v =
  match int_of_string_opt v with
  | Some i when i > 0 -> i
  | _ -> bad "%s expects a positive integer, got %S" name v

let rec parse cfg = function
  | [] -> cfg
  | "--smoke" :: rest ->
      parse { cfg with duration = 8.0; max_sessions = 12 } rest
  | "--duration" :: v :: rest -> (
      match float_of_string_opt v with
      | Some d when d > 0.0 -> parse { cfg with duration = d } rest
      | _ -> bad "--duration expects a positive number, got %S" v)
  | "--backend" :: v :: rest -> parse { cfg with backend = v } rest
  | "--seed" :: v :: rest -> parse { cfg with seed = parse_int "--seed" v } rest
  | "--sessions" :: v :: rest ->
      parse { cfg with max_sessions = parse_int "--sessions" v } rest
  | "--max-rss-mb" :: v :: rest ->
      parse { cfg with max_rss_mb = parse_int "--max-rss-mb" v } rest
  | "--telemetry-every" :: v :: rest ->
      parse { cfg with telemetry_every = parse_int "--telemetry-every" v } rest
  | "--obs-socket" :: v :: rest -> parse { cfg with obs_socket = Some v } rest
  | ("--help" | "-h") :: _ ->
      usage stdout;
      exit 0
  | [ flag ]
    when List.mem flag
           [
             "--duration"; "--backend"; "--seed"; "--sessions"; "--max-rss-mb";
             "--telemetry-every"; "--obs-socket";
           ] -> bad "%s expects a value" flag
  | arg :: _ -> bad "unknown argument %S" arg

(* ---- one wave ------------------------------------------------------------- *)

type wave_report = {
  w_sessions : int;
  w_rounds : int;
  w_frames_saved : int;
  w_frame_bytes : int;
  w_minor_words : float;  (* minor-heap words allocated running the wave *)
  w_telemetry_bytes : int;  (* 0 on unsampled waves *)
  w_failures : string list;
}

let spread_corrupt rng ~n ~t =
  let corrupt = Array.make n false in
  let placed = ref 0 in
  while !placed < t do
    let i = Prng.int rng n in
    if not corrupt.(i) then begin
      corrupt.(i) <- true;
      incr placed
    end
  done;
  corrupt

(* One session's random draw: inputs (workload family + input attack),
   protocol wide enough for the inputs, message adversary. Deterministic in
   [seed].

   [d_stats] is only [Some _] for adaptive sessions: one fast-path record per
   party. [d_resolving] says whether the workload's honest inputs are ordered
   by their top 128 bits — only then is the adaptive fast path obliged to
   engage on a zero-fault wave (clustered inputs with long shared prefixes
   tie on the truncated order key and safely fall back). *)
type session_draw = {
  d_inputs : Bigint.t array;
  d_proto : Workload.protocol;
  d_adversary : Adversary.t;
  d_describe : string;
  d_stats : Adaptive.stats array option;
  d_resolving : bool;
}

let draw_session ~corrupt ~n ~seed =
  let rng = Prng.create seed in
  let workload_name, inputs =
    match Prng.int rng 4 with
    | 0 -> ("sensors", Workload.sensor_readings rng ~n ~base:(-1004) ~jitter:3)
    | 1 ->
        ( "clustered",
          Workload.clustered_bits rng ~n ~bits:(32 + Prng.int rng 200)
            ~shared_prefix_bits:(Prng.int rng 32) )
    | 2 -> ("uniform", Workload.uniform_bits rng ~n ~bits:(8 + Prng.int rng 64))
    | _ ->
        ( "timestamps",
          Workload.timestamps rng ~n ~now_ns:"1783425600000000000"
            ~skew_ns:(1 + Prng.int rng 100000) )
  in
  let attack =
    List.nth
      [ Workload.Honest_inputs; Workload.Outlier_high; Workload.Outlier_low;
        Workload.Split_extremes ]
      (Prng.int rng 4)
  in
  let inputs = Workload.apply_input_attack attack ~corrupt inputs in
  (* Wide enough that the fixed-width comparators never clamp an input. *)
  let bits =
    Array.fold_left (fun acc v -> max acc (Bigint.bit_length v)) 64 inputs + 1
  in
  let proto_idx = Prng.int rng 4 in
  let stats =
    if proto_idx = 3 then Some (Array.init n (fun _ -> Adaptive.stats ()))
    else None
  in
  let proto =
    match proto_idx with
    | 0 -> Workload.pi_z
    | 1 -> Workload.high_cost_ca ~bits
    | 2 -> Workload.broadcast_ca ~bits
    | _ ->
        Workload.pi_z_adaptive
          ?stats_of:(Option.map (fun s me -> s.(me)) stats)
          ()
  in
  (* Fixed-width comparators clamp magnitudes; route negative workloads to
     the arbitrary-precision Pi_Z. The adaptive draw (index 3) also handles
     all of Z and keeps its slot. *)
  let proto =
    if
      (proto_idx = 1 || proto_idx = 2)
      && Array.exists (fun v -> Bigint.sign v < 0) inputs
    then Workload.pi_z
    else proto
  in
  let adversaries =
    Adversary.all_generic ~seed
    @ Attacks.all ~seed ~payload:(Sha256.digest (string_of_int seed))
  in
  let adversary =
    List.nth adversaries (Prng.int rng (List.length adversaries))
  in
  let describe =
    Printf.sprintf "proto=%s workload=%s attack=%s adversary=%s"
      proto.Workload.proto_name workload_name
      (Workload.input_attack_name attack)
      adversary.Adversary.name
  in
  {
    d_inputs = inputs;
    d_proto = proto;
    d_adversary = adversary;
    d_describe = describe;
    d_stats = stats;
    d_resolving = workload_name <> "clustered";
  }

let wave ~cfg ~obs ~sampler ~control ~idx =
  let seed = (cfg.seed * 1_000_003) + idx in
  let rng = Prng.create seed in
  let n = 4 + Prng.int rng 4 in
  let t = Prng.int rng (((n - 1) / 3) + 1) in
  (* Fault-adaptive dimension: the protocol bound stays t, but the wave
     corrupts only f <= t parties. Zero-fault waves must see the adaptive
     fast path engage; faulty waves exercise its detection and fallback. *)
  let f = Prng.int rng (t + 1) in
  let corrupt = spread_corrupt rng ~n ~t:f in
  let sessions = 1 + Prng.int rng cfg.max_sessions in
  let spacing = Prng.int rng 3 in
  let describe_wave =
    Printf.sprintf
      "wave=%d seed=%d backend=%s n=%d t=%d f=%d sessions=%d spacing=%d" idx
      seed cfg.backend n t f sessions spacing
  in
  let draws =
    Array.init sessions (fun k ->
        draw_session ~corrupt ~n ~seed:(seed + (997 * k)))
  in
  let specs =
    List.init sessions (fun k ->
        let d = draws.(k) in
        Engine.session ~sid:k ~start_round:(k * spacing)
          ~adversary:d.d_adversary (fun ctx ->
            d.d_proto.Workload.run ctx d.d_inputs.(ctx.Ctx.me)))
  in
  let telemetry =
    if idx mod cfg.telemetry_every = 0 then Some (Telemetry.create ()) else None
  in
  let failures = ref [] in
  let fail fmt =
    Printf.ksprintf (fun msg -> failures := msg :: !failures) fmt
  in
  let mw0 = Gc.minor_words () in
  match
    match cfg.backend with
    | "poll" ->
        Engine.run_poll ?telemetry ~obs ~sampler ?control ~n ~t ~corrupt specs
    | _ -> Engine.run_sim ?telemetry ~obs ~sampler ~n ~t ~corrupt specs
  with
  | exception e ->
      {
        w_sessions = sessions;
        w_rounds = 0;
        w_frames_saved = 0;
        w_frame_bytes = 0;
        w_minor_words = 0.0;
        w_telemetry_bytes = 0;
        w_failures =
          [ Printf.sprintf "%s: raised %s" describe_wave (Printexc.to_string e) ];
      }
  | outcome ->
      let minor_words = Gc.minor_words () -. mw0 in
      if outcome.Engine.aggregate.Engine.sessions_completed <> sessions then
        fail "%s: %d of %d sessions completed" describe_wave
          outcome.Engine.aggregate.Engine.sessions_completed sessions;
      List.iter
        (fun r ->
          let k = r.Engine.r_sid in
          let d = draws.(k) in
          let honest = Engine.honest_outputs ~corrupt r in
          let agreement =
            match honest with
            | [] -> false
            | o :: rest -> List.for_all (Bigint.equal o) rest
          in
          let honest_inputs =
            List.filteri (fun i _ -> not corrupt.(i)) (Array.to_list d.d_inputs)
          in
          let validity =
            List.for_all
              (fun o -> Convex.in_convex_hull ~inputs:honest_inputs o)
              honest
          in
          if not (agreement && validity) then
            fail "%s: sid=%d %s: agreement=%b validity=%b" describe_wave k
              d.d_describe agreement validity;
          (* Zero-fault waves with order keys that resolve must take the fast
             path at every party; any fallback there means the adaptive layer
             stopped being f-sensitive. *)
          match d.d_stats with
          | Some stats when f = 0 && d.d_resolving ->
              Array.iteri
                (fun i (s : Adaptive.stats) ->
                  if s.Adaptive.fallbacks > 0 || s.Adaptive.fast_taken = 0 then
                    fail
                      "%s: sid=%d %s: party %d missed the zero-fault fast \
                       path (fast=%d fallbacks=%d f_observed=%d)"
                      describe_wave k d.d_describe i s.Adaptive.fast_taken
                      s.Adaptive.fallbacks s.Adaptive.f_observed)
                stats
          | Some _ | None -> ())
        outcome.Engine.sessions;
      let telemetry_bytes =
        match telemetry with
        | None -> 0
        | Some tm -> String.length (Telemetry.to_jsonl tm)
      in
      {
        w_sessions = sessions;
        w_rounds = outcome.Engine.aggregate.Engine.engine_rounds;
        w_frames_saved = outcome.Engine.aggregate.Engine.frames_saved;
        w_frame_bytes = outcome.Engine.aggregate.Engine.frame_bytes;
        w_minor_words = minor_words;
        w_telemetry_bytes = telemetry_bytes;
        w_failures = List.rev !failures;
      }

(* ---- main loop ------------------------------------------------------------ *)

let () =
  let cfg = parse default_cfg (List.tl (Array.to_list Sys.argv)) in
  (match cfg.backend with
  | "sim" | "poll" -> ()
  | "unix" ->
      Printf.eprintf
        "error: the unix backend runs honest executions only; the soak is \
         adversarial (use --backend sim or --backend poll)\n";
      exit 2
  | b ->
      Printf.eprintf "error: unknown backend %S; available: sim, poll\n" b;
      exit 2);
  let rss_ceiling = cfg.max_rss_mb * 1024 * 1024 in
  (* One observability plane for the whole soak: instruments accumulate
     across waves (the interesting distributions are long-run ones), the
     sampler ring keeps the most recent snapshots, and the optional endpoint
     serves the dump mid-wave (from inside the poll loop) or between waves. *)
  let obs = Obs.create () in
  let sampler = Obs.Sampler.create () in
  let frame_h = Obs.hist obs ~tier:Obs.Det "engine/frame_bytes" in
  let wall_h = Obs.hist obs ~tier:Obs.Sampled "engine/round_wall_ns" in
  let endpoint =
    Option.map
      (fun path ->
        let ep =
          Obs.Endpoint.create ~path ~render:(fun () -> Obs.render_text obs)
        in
        Printf.printf "soak: live stats on %s (ca_cli obs --socket %s)\n%!" path
          path;
        ep)
      cfg.obs_socket
  in
  let control =
    Option.map
      (fun ep -> (Obs.Endpoint.fd ep, fun () -> Obs.Endpoint.service ep))
      endpoint
  in
  let t0 = Unix.gettimeofday () in
  let waves = ref 0 in
  let total_sessions = ref 0 in
  let total_rounds = ref 0 in
  let total_saved = ref 0 in
  let sampled_bytes = ref 0 in
  let sampled_waves = ref 0 in
  let failures = ref 0 in
  let rss_breached = ref false in
  let total_minor_words = ref 0.0 in
  (* Per wave, minor words per frame byte — allocation normalized by how much
     traffic the wave actually moved, so random wave sizes cancel out. An
     engine that leaks allocates more per byte as waves accumulate. *)
  let alloc_rates = ref [] in
  Printf.printf
    "soak: backend=%s duration=%.0fs seed=%d max-sessions/wave=%d \
     rss-ceiling=%dMB\n\
     %!"
    cfg.backend cfg.duration cfg.seed cfg.max_sessions cfg.max_rss_mb;
  while
    (not !rss_breached)
    && (!waves = 0 || Unix.gettimeofday () -. t0 < cfg.duration)
  do
    let r = wave ~cfg ~obs ~sampler ~control ~idx:!waves in
    incr waves;
    total_sessions := !total_sessions + r.w_sessions;
    total_rounds := !total_rounds + r.w_rounds;
    total_saved := !total_saved + r.w_frames_saved;
    total_minor_words := !total_minor_words +. r.w_minor_words;
    if r.w_frame_bytes > 0 then
      alloc_rates :=
        (r.w_minor_words /. float_of_int r.w_frame_bytes) :: !alloc_rates;
    if r.w_telemetry_bytes > 0 then begin
      incr sampled_waves;
      sampled_bytes := !sampled_bytes + r.w_telemetry_bytes
    end;
    List.iter
      (fun msg ->
        incr failures;
        Printf.printf "FAIL %s\n%!" msg)
      r.w_failures;
    (* The ceiling is the soak's leak detector: a transport or engine that
       accumulates per-wave state trips it long before the box swaps. *)
    (match Net_poll.rss_peak_bytes () with
    | Some peak when peak > rss_ceiling ->
        rss_breached := true;
        Printf.printf "FAIL wave=%d: peak RSS %d MB exceeds ceiling %d MB\n%!"
          (!waves - 1)
          (peak / (1024 * 1024))
          cfg.max_rss_mb
    | Some _ | None -> ());
    (* Per-wave health snapshot: one sampler tick plus a line of cumulative
       obs distributions — the same numbers the live endpoint serves. *)
    Obs.Sampler.record sampler ~round:!total_rounds ();
    Option.iter Obs.Endpoint.service endpoint;
    Printf.printf
      "  wave %d health: rounds=%d frames=%d frame-p99=%dB round-p99=%.2fms \
       rss=%s\n\
       %!"
      (!waves - 1) !total_rounds (Obs.Hist.count frame_h)
      (Obs.Hist.quantile frame_h 0.99)
      (float_of_int (Obs.Hist.quantile wall_h 0.99) /. 1e6)
      (match Net_poll.rss_bytes () with
      | Some b -> Printf.sprintf "%dMB" (b / (1024 * 1024))
      | None -> "n/a");
    if !waves mod 10 = 0 then
      Printf.printf
        "  ... %d waves, %d sessions, %d failures, rss=%s, %.1fs\n%!" !waves
        !total_sessions !failures
        (match Net_poll.rss_bytes () with
        | Some b -> Printf.sprintf "%dMB" (b / (1024 * 1024))
        | None -> "n/a")
        (Unix.gettimeofday () -. t0)
  done;
  Printf.printf
    "soak: %d waves, %d sessions, %d engine rounds, %d frames saved, %d \
     failures in %.1fs\n"
    !waves !total_sessions !total_rounds !total_saved !failures
    (Unix.gettimeofday () -. t0);
  Option.iter Obs.Endpoint.close endpoint;
  Printf.printf "      telemetry sampled on %d waves (%d bytes, dropped)%s\n"
    !sampled_waves !sampled_bytes
    (match Net_poll.rss_peak_bytes () with
    | Some b -> Printf.sprintf "; peak rss %d MB" (b / (1024 * 1024))
    | None -> "");
  Printf.printf
    "      obs: %d frames (p50=%dB p99=%dB), round wall p99 %.2fms, %d \
     sampler ticks (%d dropped)\n"
    (Obs.Hist.count frame_h)
    (Obs.Hist.quantile frame_h 0.5)
    (Obs.Hist.quantile frame_h 0.99)
    (float_of_int (Obs.Hist.quantile wall_h 0.99) /. 1e6)
    (Obs.Sampler.recorded sampler)
    (Obs.Sampler.dropped sampler);
  Printf.printf "      allocation: %.0f minor words/wave mean\n"
    (if !waves = 0 then 0.0 else !total_minor_words /. float_of_int !waves);
  (* Flatness: the allocation rate (minor words per frame byte) must not
     drift upward across the run — the GC-side analogue of the RSS ceiling.
     Medians of the two halves; one-sided, because wave counts vary with
     wall clock and a faster second half is not a leak. *)
  let flat_ok =
    let rates = Array.of_list (List.rev !alloc_rates) in
    let w = Array.length rates in
    if w < 4 then true
    else begin
      let median a =
        let s = Array.copy a in
        Array.sort compare s;
        let m = Array.length s in
        if m land 1 = 1 then s.(m / 2) else (s.((m / 2) - 1) +. s.(m / 2)) /. 2.0
      in
      let first = median (Array.sub rates 0 (w / 2)) in
      let second = median (Array.sub rates (w / 2) (w - (w / 2))) in
      Printf.printf
        "      allocation rate: %.1f -> %.1f words/frame-byte (median, \
         first/second half)\n"
        first second;
      if second > 1.2 *. first then begin
        Printf.printf
          "FAIL allocation rate drifted: second-half median %.1f > 1.2x \
           first-half %.1f words/frame-byte\n"
          second first;
        false
      end
      else true
    end
  in
  if !failures > 0 || !rss_breached || not flat_ok then exit 1
