(* convex-agreement — command-line front end.

   Runs a configurable Convex Agreement scenario in the deterministic
   simulator and reports outputs, property checks and communication metrics.

     dune exec bin/ca_cli.exe -- run -n 10 -t 3 --workload sensors \
         --adversary equivocate --attack outlier-high
     dune exec bin/ca_cli.exe -- run --protocol broadcast-ca --bits 64 \
         --workload timestamps --verbose
     dune exec bin/ca_cli.exe -- list *)

open Net

(* ------------------------------------------------------------------ *)
(* Catalogues                                                          *)
(* ------------------------------------------------------------------ *)

let adversary_catalogue ~seed =
  [
    ("passive", Adversary.passive);
    ("silent", Adversary.silent);
    ("crash", Adversary.crash ~after:10);
    ("garbage", Adversary.garbage ~seed);
    ("spammer", Adversary.spammer ~seed ~max_len:128);
    ("equivocate", Adversary.equivocate ~seed);
    ("bitflip", Adversary.bitflip ~seed);
    ("delayer", Adversary.delayer ());
  ]

let attack_catalogue =
  [
    ("honest-inputs", Workload.Honest_inputs);
    ("outlier-high", Workload.Outlier_high);
    ("outlier-low", Workload.Outlier_low);
    ("split-extremes", Workload.Split_extremes);
  ]

let protocol_catalogue ~bits ~aa_rounds =
  [
    ("pi-z", Workload.pi_z);
    ("high-cost-ca", Workload.high_cost_ca ~bits);
    ("broadcast-ca", Workload.broadcast_ca ~bits);
    ("broadcast-ca-parallel", Workload.broadcast_ca_parallel ~bits);
    ("median-ba", Workload.median_ba ~bits);
    ("tc-ba", Workload.turpin_coan_ba ~bits);
    ("phase-king-ba", Workload.phase_king_ba ~bits);
    ("approx-agreement", Workload.approx_agreement ~bits ~rounds:aa_rounds);
  ]

(* The Pi_BA substrate seam: which BA backend the pi-z protocol family runs
   its agreement sub-calls on. *)
let ba_backends = [ "unauth"; "auth"; "adaptive"; "adaptive-auth" ]

let resolve_ba ba_name =
  match ba_name with
  | "unauth" -> `Unauth
  | "auth" -> `Auth
  | "adaptive" -> `Adaptive
  | "adaptive-auth" -> `AdaptiveAuth
  | b ->
      Printf.eprintf "error: unknown --ba backend %S; available: %s\n" b
        (String.concat ", " ba_backends);
      exit 2

(* A fresh authenticated setup per protocol run: XMSS signers are stateful.
   64 instances is a ~3x margin over the ~23 BA sub-calls a Pi_Z run opens. *)
let auth_setup ~seed ~n ~t =
  Auth.Setup.generate ~seed:(seed + 7919) ~n
    ~capacity:(Auth.Auth_ba.required_capacity ~t ~instances:64)

let workload_catalogue rng ~n ~bits =
  [
    ("sensors", fun () -> Workload.sensor_readings rng ~n ~base:(-1004) ~jitter:2);
    ( "prices",
      fun () -> Workload.price_feed rng ~n ~base:"2931" ~decimals:18 ~spread_ppm:200 );
    ( "timestamps",
      fun () ->
        Workload.timestamps rng ~n ~now_ns:"1783425600000000000" ~skew_ns:40_000_000 );
    ("uniform", fun () -> Workload.uniform_bits rng ~n ~bits);
    ( "clustered",
      fun () -> Workload.clustered_bits rng ~n ~bits ~shared_prefix_bits:(bits / 2) );
  ]

(* ------------------------------------------------------------------ *)
(* Telemetry helpers                                                   *)
(* ------------------------------------------------------------------ *)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* A recorder pre-loaded with the scenario parameters as meta lines, shared
   by every command that can attach telemetry. *)
let make_recorder ~command kvs =
  let tm = Telemetry.create () in
  Telemetry.set_meta tm "command" command;
  List.iter (fun (k, v) -> Telemetry.set_meta tm k v) kvs;
  tm

let export_telemetry tm path =
  write_file path (Telemetry.to_jsonl tm);
  Printf.printf "telemetry:       wrote JSONL to %s\n" path

(* ------------------------------------------------------------------ *)
(* --domains validation, shared by run/engine/telemetry: reject nonsense,
   clamp to the hardware bound (oversubscribing the cores only adds barrier
   overhead; bit-identity makes the clamp observable in wall-clock alone),
   and report the decision in the run header. *)
let effective_domains requested =
  if requested < 1 then begin
    Printf.eprintf "error: --domains must be >= 1 (got %d)\n" requested;
    exit 2
  end;
  let recommended = Pool.recommended () in
  let eff = min requested recommended in
  Printf.printf "domains:         requested %d, effective %d (host recommends %d)\n"
    requested eff recommended;
  eff

(* ------------------------------------------------------------------ *)
(* The run command                                                     *)
(* ------------------------------------------------------------------ *)

let run_scenario n t protocol_name workload_name adversary_name attack_name
    ba_name bits aa_rounds seed verbose domains_req telemetry_path =
  if 3 * t >= n then begin
    Printf.eprintf "error: resilience requires t < n/3 (got n=%d, t=%d)\n" n t;
    exit 2
  end;
  let domains = effective_domains domains_req in
  let rng = Prng.create seed in
  let lookup what table name =
    match List.assoc_opt name table with
    | Some v -> v
    | None ->
        Printf.eprintf "error: unknown %s %S; available: %s\n" what name
          (String.concat ", " (List.map fst table));
        exit 2
  in
  let ba = resolve_ba ba_name in
  let require_pi_z () =
    if not (String.equal protocol_name "pi-z") then begin
      Printf.eprintf
        "error: --ba %s applies to --protocol pi-z (the functorized Pi_BA \
         seam); %S has no BA substrate\n"
        ba_name protocol_name;
      exit 2
    end
  in
  let protocol, setup =
    match ba with
    | `Unauth ->
        (lookup "protocol" (protocol_catalogue ~bits ~aa_rounds) protocol_name, `Plain)
    | `Auth ->
        require_pi_z ();
        (Workload.pi_z_auth (auth_setup ~seed ~n ~t), `Authenticated)
    | `Adaptive ->
        require_pi_z ();
        (Workload.pi_z_adaptive (), `Plain)
    | `AdaptiveAuth ->
        require_pi_z ();
        (Workload.pi_z_adaptive_auth (auth_setup ~seed ~n ~t), `Authenticated)
  in
  let gen = lookup "workload" (workload_catalogue rng ~n ~bits) workload_name in
  let adversary = lookup "adversary" (adversary_catalogue ~seed) adversary_name in
  let attack = lookup "attack" attack_catalogue attack_name in
  let corrupt = Workload.spread_corrupt ~n ~t in
  let inputs = Workload.apply_input_attack attack ~corrupt (gen ()) in
  if verbose then begin
    Printf.printf "inputs:\n";
    Array.iteri
      (fun i v ->
        Printf.printf "  party %2d: %s%s\n" i (Bigint.to_string v)
          (if corrupt.(i) then "   <- byzantine" else ""))
      inputs
  end;
  let telemetry =
    Option.map
      (fun _ ->
        make_recorder ~command:"run"
          [
            ("protocol", protocol_name);
            ("workload", workload_name);
            ("adversary", adversary_name);
            ("attack", attack_name);
            ("ba", ba_name);
            ("n", string_of_int n);
            ("t", string_of_int t);
            ("bits", string_of_int bits);
            ("seed", string_of_int seed);
          ])
      telemetry_path
  in
  let report =
    Workload.run_int ?telemetry ~setup ~domains ~n ~t ~corrupt ~adversary
      ~inputs protocol.Workload.run
  in
  (match (telemetry, telemetry_path) with
  | Some tm, Some path -> export_telemetry tm path
  | _ -> ());
  Printf.printf "protocol:        %s\n" protocol.Workload.proto_name;
  Printf.printf "parties:         n=%d, t=%d, adversary=%s, attack=%s, seed=%d\n" n t
    adversary.Adversary.name attack_name seed;
  Printf.printf "output:          %s\n"
    (match report.Workload.outputs with
    | o :: _ -> Bigint.to_string o
    | [] -> "(none)");
  Printf.printf "agreement:       %b\n" report.Workload.agreement;
  Printf.printf "convex validity: %b%s\n" report.Workload.convex_validity
    (if protocol.Workload.solves_ca then ""
     else "   (not promised by this protocol)");
  Printf.printf "communication:   %d honest bits (%d byzantine), %d rounds\n"
    report.Workload.honest_bits report.Workload.byz_bits report.Workload.rounds;
  if verbose then begin
    Printf.printf "per-component honest bits:\n";
    List.iter
      (fun (label, b) -> Printf.printf "  %-20s %10d\n" label b)
      report.Workload.labels
  end;
  if protocol.Workload.solves_ca && not (report.Workload.agreement && report.Workload.convex_validity)
  then exit 1

(* ------------------------------------------------------------------ *)
(* The trace command                                                   *)
(* ------------------------------------------------------------------ *)

let trace_scenario n t protocol_name workload_name adversary_name attack_name bits
    aa_rounds seed csv_path =
  if 3 * t >= n then begin
    Printf.eprintf "error: resilience requires t < n/3 (got n=%d, t=%d)\n" n t;
    exit 2
  end;
  let rng = Prng.create seed in
  let lookup what table name =
    match List.assoc_opt name table with
    | Some v -> v
    | None ->
        Printf.eprintf "error: unknown %s %S\n" what name;
        exit 2
  in
  let protocol =
    lookup "protocol" (protocol_catalogue ~bits ~aa_rounds) protocol_name
  in
  let gen = lookup "workload" (workload_catalogue rng ~n ~bits) workload_name in
  let adversary = lookup "adversary" (adversary_catalogue ~seed) adversary_name in
  let attack = lookup "attack" attack_catalogue attack_name in
  let corrupt = Workload.spread_corrupt ~n ~t in
  let inputs = Workload.apply_input_attack attack ~corrupt (gen ()) in
  let trace = Trace.create () in
  let outcome =
    Sim.run ~trace ~n ~t ~corrupt ~adversary (fun ctx ->
        protocol.Workload.run ctx inputs.(ctx.Ctx.me))
  in
  ignore (Sim.honest_outputs ~corrupt outcome);
  (match csv_path with
  | Some path ->
      let oc = open_out path in
      output_string oc (Trace.to_csv trace);
      close_out oc;
      Printf.printf "wrote %d events to %s\n" (Trace.length trace) path
  | None -> ());
  Format.printf "%a" (fun fmt tr -> Trace.pp_summary fmt tr ~n) trace

(* ------------------------------------------------------------------ *)
(* The engine command                                                  *)
(* ------------------------------------------------------------------ *)

let engine_scenario n t sessions spacing backend adversary_name attack_name
    ba_name bits seed verbose domains_req telemetry_path obs_dir obs_socket =
  if 3 * t >= n then begin
    Printf.eprintf "error: resilience requires t < n/3 (got n=%d, t=%d)\n" n t;
    exit 2
  end;
  let domains = effective_domains domains_req in
  if sessions < 1 then begin
    Printf.eprintf "error: --sessions must be at least 1\n";
    exit 2
  end;
  if spacing < 0 then begin
    Printf.eprintf "error: --spacing must be non-negative\n";
    exit 2
  end;
  (match backend with
  | "sim" | "unix" | "poll" -> ()
  | b ->
      Printf.eprintf "error: unknown backend %S; available: sim, unix, poll\n"
        b;
      exit 2);
  let unix = String.equal backend "unix" in
  if unix && (obs_dir <> None || obs_socket <> None) then begin
    Printf.eprintf
      "error: the unix backend has no observability hooks; --obs-dir and \
       --obs-socket require --backend sim or --backend poll\n";
    exit 2
  end;
  if obs_socket <> None && not (String.equal backend "poll") then begin
    Printf.eprintf
      "error: --obs-socket serves the live stats endpoint from inside the \
       poll loop; it requires --backend poll\n";
    exit 2
  end;
  if unix && not (String.equal adversary_name "passive") then begin
    Printf.eprintf
      "error: the unix backend runs honest executions only; byzantine \
       behaviour is a simulator concern (use --backend sim or --adversary \
       passive)\n";
    exit 2
  end;
  let lookup what table name =
    match List.assoc_opt name table with
    | Some v -> v
    | None ->
        Printf.eprintf "error: unknown %s %S; available: %s\n" what name
          (String.concat ", " (List.map fst table));
        exit 2
  in
  let ba = resolve_ba ba_name in
  let session_setup =
    match ba with
    | `Unauth | `Adaptive -> `Plain
    | `Auth | `AdaptiveAuth -> `Authenticated
  in
  let attack = lookup "attack" attack_catalogue attack_name in
  let corrupt =
    if unix then Array.make n false else Workload.spread_corrupt ~n ~t
  in
  (* Each session gets its own seeded input vector and its own adversary
     instance (strategies carry PRNG state), as the engine requires. *)
  let inputs =
    Array.init sessions (fun k ->
        let rng = Prng.create (seed + (101 * k)) in
        Workload.apply_input_attack attack ~corrupt
          (Workload.clustered_bits rng ~n ~bits ~shared_prefix_bits:(bits / 2)))
  in
  (* One protocol value per session: under --ba auth each session gets its
     own fresh setup (XMSS signers are stateful, and sessions are
     independent protocol runs). *)
  (* Fast-path accounting for the adaptive backends: one record per
     (session, party) so domain-parallel sessions never share state; summed
     over honest parties into the Obs Det tier after the run. *)
  let adaptive_stats =
    Array.init sessions (fun _ -> Array.init n (fun _ -> Adaptive.stats ()))
  in
  let protos =
    Array.init sessions (fun k ->
        let stats_of me = adaptive_stats.(k).(me) in
        match ba with
        | `Unauth -> Workload.pi_z
        | `Auth -> Workload.pi_z_auth (auth_setup ~seed:(seed + (31 * k)) ~n ~t)
        | `Adaptive -> Workload.pi_z_adaptive ~stats_of ()
        | `AdaptiveAuth ->
            Workload.pi_z_adaptive_auth ~stats_of
              (auth_setup ~seed:(seed + (31 * k)) ~n ~t))
  in
  let specs =
    List.init sessions (fun k ->
        let adversary =
          lookup "adversary"
            (adversary_catalogue ~seed:(seed + (997 * k)))
            adversary_name
        in
        Engine.session ~start_round:(k * spacing) ~adversary ~setup:session_setup
          ~sid:k (fun ctx ->
            protos.(k).Workload.run ctx inputs.(k).(ctx.Ctx.me)))
  in
  (* The chrome trace renders from telemetry span trees, so --obs-dir forces
     a recorder even when no telemetry JSONL was requested. *)
  let telemetry =
    if telemetry_path = None && obs_dir = None then None
    else
      Some
        (make_recorder ~command:"engine"
           [
             ("backend", backend);
             ("adversary", adversary_name);
             ("attack", attack_name);
             ("ba", ba_name);
             ("n", string_of_int n);
             ("t", string_of_int t);
             ("sessions", string_of_int sessions);
             ("spacing", string_of_int spacing);
             ("bits", string_of_int bits);
             ("seed", string_of_int seed);
           ])
  in
  let obs =
    if obs_dir = None && obs_socket = None then None else Some (Obs.create ())
  in
  let sampler = Option.map (fun _ -> Obs.Sampler.create ()) obs_dir in
  let endpoint =
    Option.map
      (fun path ->
        let o = Option.get obs in
        Obs.Endpoint.create ~path ~render:(fun () -> Obs.render_text o))
      obs_socket
  in
  let control =
    Option.map
      (fun ep -> (Obs.Endpoint.fd ep, fun () -> Obs.Endpoint.service ep))
      endpoint
  in
  let outcome =
    Fun.protect
      ~finally:(fun () -> Option.iter Obs.Endpoint.close endpoint)
      (fun () ->
        match backend with
        | "unix" -> Engine.run_unix ?telemetry ~domains ~t ~n specs
        | "poll" ->
            Engine.run_poll ?telemetry ?obs ?sampler ?control ~domains ~n ~t
              ~corrupt specs
        | _ -> Engine.run_sim ?telemetry ?obs ?sampler ~domains ~n ~t ~corrupt specs)
  in
  (match (telemetry, telemetry_path) with
  | Some tm, Some path -> export_telemetry tm path
  | _ -> ());
  (* The adaptive counters are Det-tier: summed over honest parties in fixed
     index order, they are byte-identical across sim/poll and any --domains. *)
  (match (obs, ba) with
  | Some o, (`Adaptive | `AdaptiveAuth) ->
      let fast = Obs.counter o ~tier:Obs.Det "adaptive/fast_path_taken"
      and fb = Obs.counter o ~tier:Obs.Det "adaptive/fallbacks"
      and f_obs = Obs.counter o ~tier:Obs.Det "adaptive/f_observed" in
      Array.iter
        (fun per_party ->
          Array.iteri
            (fun i s ->
              if not corrupt.(i) then begin
                Obs.incr fast s.Adaptive.fast_taken;
                Obs.incr fb s.Adaptive.fallbacks;
                Obs.incr f_obs s.Adaptive.f_observed
              end)
            per_party)
        adaptive_stats
  | _ -> ());
  (match obs_dir with
  | Some dir ->
      let o = Option.get obs and smp = Option.get sampler in
      (* Closing sample, so even zero-spacing smoke runs export a series. *)
      Obs.Sampler.record smp
        ~round:outcome.Engine.aggregate.Engine.engine_rounds ~live:0 ();
      (try Unix.mkdir dir 0o755
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      write_file (Filename.concat dir "obs.jsonl") (Obs.to_jsonl o);
      write_file
        (Filename.concat dir "obs_det.jsonl")
        (Obs.to_jsonl ~tier:Obs.Det o);
      write_file (Filename.concat dir "sampler.jsonl") (Obs.Sampler.to_jsonl smp);
      (match telemetry with
      | Some tm ->
          write_file (Filename.concat dir "trace.json") (Obs.Trace.chrome_trace tm)
      | None -> ());
      Printf.printf
        "obs:             wrote obs.jsonl, obs_det.jsonl, sampler.jsonl, \
         trace.json under %s\n"
        dir
  | None -> ());
  Printf.printf
    "backend:   %s   (n=%d, t=%d, protocol=%s, adversary=%s, attack=%s, \
     seed=%d)\n"
    backend n t protos.(0).Workload.proto_name adversary_name attack_name seed;
  Printf.printf "sessions:  %d, spacing %d engine round(s) between arrivals\n\n"
    sessions spacing;
  Printf.printf "  sid  admit  retire  rounds  honest-bits  agree  valid\n";
  let ok = ref true in
  List.iter
    (fun r ->
      let honest = Engine.honest_outputs ~corrupt r in
      let agree =
        match honest with
        | [] -> false
        | o :: rest -> List.for_all (Bigint.equal o) rest
      in
      let honest_inputs =
        List.filteri
          (fun i _ -> not corrupt.(i))
          (Array.to_list inputs.(r.Engine.r_sid))
      in
      let valid =
        List.for_all
          (fun o -> Convex.in_convex_hull ~inputs:honest_inputs o)
          honest
      in
      if not (agree && valid) then ok := false;
      Printf.printf "  %3d  %5d  %6d  %6d  %11d  %5s  %5s\n" r.Engine.r_sid
        r.Engine.r_admitted_at r.Engine.r_retired_at
        r.Engine.r_metrics.Metrics.rounds r.Engine.r_metrics.Metrics.honest_bits
        (if agree then "yes" else "NO")
        (if valid then "yes" else "NO");
      if verbose then
        match honest with
        | o :: _ -> Printf.printf "       output: %s\n" (Bigint.to_string o)
        | [] -> ())
    outcome.Engine.sessions;
  let a = outcome.Engine.aggregate in
  Printf.printf
    "\n\
     aggregate: %d engine rounds, %d/%d sessions completed, peak %d live\n\
     transport: %d coalesced frames (naive %d, saved %d), %d frame bytes, %d \
     payload bytes\n\
     cost:      %d honest bits total (%d bits/session)\n"
    a.Engine.engine_rounds a.Engine.sessions_completed sessions
    a.Engine.peak_live a.Engine.frames_sent a.Engine.naive_frames
    a.Engine.frames_saved a.Engine.frame_bytes a.Engine.payload_bytes
    a.Engine.honest_bits_total
    (a.Engine.honest_bits_total / sessions);
  if not !ok then exit 1

(* ------------------------------------------------------------------ *)
(* The telemetry command                                               *)
(* ------------------------------------------------------------------ *)

let telemetry_scenario n t protocol_name workload_name adversary_name
    attack_name bits aa_rounds seed top domains_req jsonl_path =
  if 3 * t >= n then begin
    Printf.eprintf "error: resilience requires t < n/3 (got n=%d, t=%d)\n" n t;
    exit 2
  end;
  let domains = effective_domains domains_req in
  let rng = Prng.create seed in
  let lookup what table name =
    match List.assoc_opt name table with
    | Some v -> v
    | None ->
        Printf.eprintf "error: unknown %s %S; available: %s\n" what name
          (String.concat ", " (List.map fst table));
        exit 2
  in
  let protocol =
    lookup "protocol" (protocol_catalogue ~bits ~aa_rounds) protocol_name
  in
  let gen = lookup "workload" (workload_catalogue rng ~n ~bits) workload_name in
  let adversary = lookup "adversary" (adversary_catalogue ~seed) adversary_name in
  let attack = lookup "attack" attack_catalogue attack_name in
  let corrupt = Workload.spread_corrupt ~n ~t in
  let inputs = Workload.apply_input_attack attack ~corrupt (gen ()) in
  let tm =
    make_recorder ~command:"telemetry"
      [
        ("protocol", protocol_name);
        ("workload", workload_name);
        ("adversary", adversary_name);
        ("attack", attack_name);
        ("n", string_of_int n);
        ("t", string_of_int t);
        ("bits", string_of_int bits);
        ("seed", string_of_int seed);
      ]
  in
  let report =
    Workload.run_int ~telemetry:tm ~domains ~n ~t ~corrupt ~adversary ~inputs
      protocol.Workload.run
  in
  Format.printf "%a" (Telemetry.pp_report ~top) tm;
  (* The ledger-equality invariant, checked live on every CLI run. *)
  if Telemetry.honest_bits_total tm <> report.Workload.honest_bits then begin
    Printf.eprintf "error: telemetry ledger mismatch (%d span bits, %d metric bits)\n"
      (Telemetry.honest_bits_total tm) report.Workload.honest_bits;
    exit 1
  end;
  match jsonl_path with
  | Some path ->
      write_file path (Telemetry.to_jsonl tm);
      Printf.printf "\nwrote JSONL to %s\n" path
  | None -> ()

(* ------------------------------------------------------------------ *)
(* The obs command                                                     *)
(* ------------------------------------------------------------------ *)

(* Client side of the observability plane: fetch a live plain-text stats
   dump from a running engine/soak (--socket), or schema-check the artifact
   set an --obs-dir run exported (--check) — what the obs-smoke make target
   drives. *)
let obs_client socket check =
  match (socket, check) with
  | Some path, None -> (
      match Obs.Endpoint.fetch ~path with
      | Ok body ->
          print_string body;
          if String.length body = 0 || body.[String.length body - 1] <> '\n'
          then print_newline ()
      | Error msg ->
          Printf.eprintf "error: fetching %s: %s\n" path msg;
          exit 1)
  | None, Some dir ->
      let read_file path =
        match open_in_bin path with
        | exception Sys_error msg ->
            Printf.eprintf "error: %s\n" msg;
            exit 1
        | ic ->
            let s = really_input_string ic (in_channel_length ic) in
            close_in ic;
            s
      in
      let check_file name validate what =
        let path = Filename.concat dir name in
        match validate (read_file path) with
        | Ok count -> Printf.printf "%-14s ok: %d %s\n" name count what
        | Error msg ->
            Printf.eprintf "error: %s: %s\n" path msg;
            exit 1
      in
      check_file "obs.jsonl" Obs.Check.registry_jsonl "instrument lines";
      check_file "obs_det.jsonl" Obs.Check.registry_jsonl "instrument lines";
      check_file "sampler.jsonl" Obs.Check.sampler_jsonl "lines";
      check_file "trace.json" Obs.Check.chrome_trace "trace events"
  | _ ->
      Printf.eprintf
        "error: obs takes exactly one of --socket PATH (live dump) or --check \
         DIR (validate exported artifacts)\n";
      exit 2

(* ------------------------------------------------------------------ *)
(* The list command                                                    *)
(* ------------------------------------------------------------------ *)

let list_catalogues () =
  let names table = String.concat ", " (List.map fst table) in
  Printf.printf "protocols:  %s\n" (names (protocol_catalogue ~bits:64 ~aa_rounds:8));
  Printf.printf "workloads:  %s\n"
    (names (workload_catalogue (Prng.create 0) ~n:4 ~bits:64));
  Printf.printf "adversaries: %s\n" (names (adversary_catalogue ~seed:0));
  Printf.printf "attacks:    %s\n" (names attack_catalogue);
  Printf.printf "ba backends: %s\n" (String.concat ", " ba_backends)

(* ------------------------------------------------------------------ *)
(* Cmdliner plumbing                                                   *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let n_arg =
  Arg.(value & opt int 7 & info [ "n" ] ~docv:"N" ~doc:"Number of parties.")

let t_arg =
  Arg.(
    value & opt int 2
    & info [ "t" ] ~docv:"T" ~doc:"Corruption bound; must satisfy t < n/3.")

let protocol_arg =
  Arg.(
    value & opt string "pi-z"
    & info [ "protocol"; "p" ] ~docv:"NAME"
        ~doc:"Protocol to run (see $(b,list) for the catalogue).")

let workload_arg =
  Arg.(
    value & opt string "sensors"
    & info [ "workload"; "w" ] ~docv:"NAME" ~doc:"Honest input distribution.")

let adversary_arg =
  Arg.(
    value & opt string "equivocate"
    & info [ "adversary"; "a" ] ~docv:"NAME" ~doc:"Byzantine message strategy.")

let attack_arg =
  Arg.(
    value & opt string "outlier-high"
    & info [ "attack" ] ~docv:"NAME" ~doc:"Byzantine input placement.")

let ba_arg =
  Arg.(
    value & opt string "unauth"
    & info [ "ba" ] ~docv:"BACKEND"
        ~doc:
          "BA substrate for the $(b,pi-z) protocol family: $(b,unauth) \
           (phase king, plain model, t < n/3), $(b,auth) (quorum \
           certificates over the XMSS PKI; the agreement sub-calls tolerate \
           t < n/2, while the surrounding CA machinery keeps its own t < n/3 \
           requirement), $(b,adaptive) (fault-adaptive fast path: O(1)-round \
           optimistic preamble that terminates in O(nl + n^2 k) bits when no \
           party misbehaves, falling back to the full pi-z stack over \
           $(b,unauth) otherwise) or $(b,adaptive-auth) (the same fast path \
           over the $(b,auth) fallback).")

let bits_arg =
  Arg.(
    value & opt int 64
    & info [ "bits" ] ~docv:"BITS"
        ~doc:"Public value width for the fixed-width comparator protocols.")

let aa_rounds_arg =
  Arg.(
    value & opt int 8
    & info [ "aa-rounds" ] ~docv:"K" ~doc:"Iterations for approx-agreement.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic seed.")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print inputs and cost split.")

let file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "file"; "f" ] ~docv:"FILE"
        ~doc:
          "Load the whole configuration from a scenario file (key = value \
           lines; see the Scenario library). Overrides the other options.")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "Domains (cores) to run the per-round party/session steps on. \
           Values below 1 are rejected; values above the host's recommended \
           domain count are clamped to it, and the effective value is \
           printed in the run header. Results are bit-identical for every \
           value — only wall-clock changes.")

let telemetry_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry" ] ~docv:"FILE"
        ~doc:"Record telemetry (spans, timelines, probes) and write it as JSONL.")

let run_dispatch file n t protocol workload adversary attack ba bits aa_rounds
    seed verbose domains telemetry =
  match file with
  | None ->
      run_scenario n t protocol workload adversary attack ba bits aa_rounds
        seed verbose domains telemetry
  | Some path -> (
      match Scenario.load path with
      | Error msg ->
          Printf.eprintf "error: %s: %s\n" path msg;
          exit 2
      | Ok s ->
          run_scenario s.Scenario.n s.Scenario.t s.Scenario.protocol
            s.Scenario.workload s.Scenario.adversary s.Scenario.attack
            s.Scenario.ba s.Scenario.bits s.Scenario.aa_rounds s.Scenario.seed
            verbose domains telemetry)

let run_cmd =
  let doc = "run one Convex Agreement scenario in the simulator" in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run_dispatch $ file_arg $ n_arg $ t_arg $ protocol_arg $ workload_arg
      $ adversary_arg $ attack_arg $ ba_arg $ bits_arg $ aa_rounds_arg
      $ seed_arg $ verbose_arg $ domains_arg $ telemetry_file_arg)

let list_cmd =
  let doc = "list protocols, workloads, adversaries and input attacks" in
  Cmd.v (Cmd.info "list" ~doc) Term.(const list_catalogues $ const ())

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE" ~doc:"Write the message-level trace as CSV.")

let trace_cmd =
  let doc = "run a scenario and print/export its message-level trace" in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const trace_scenario $ n_arg $ t_arg $ protocol_arg $ workload_arg
      $ adversary_arg $ attack_arg $ bits_arg $ aa_rounds_arg $ seed_arg $ csv_arg)

let sessions_arg =
  Arg.(
    value & opt int 8
    & info [ "sessions"; "k" ] ~docv:"K"
        ~doc:"Number of concurrent Π_ℤ sessions to multiplex.")

let spacing_arg =
  Arg.(
    value & opt int 0
    & info [ "spacing" ] ~docv:"S"
        ~doc:
          "Engine rounds between session arrivals (session $(i,k) is admitted \
           at round $(i,k)·S); 0 starts everything at once.")

let backend_arg =
  Arg.(
    value & opt string "sim"
    & info [ "backend" ] ~docv:"NAME"
        ~doc:
          "Execution backend: $(b,sim) (deterministic lock-step simulator, \
           supports adversaries), $(b,unix) (socket mesh, one thread per \
           party, honest only), or $(b,poll) (single-process event loop over \
           nonblocking sockets, supports adversaries, bit-identical to \
           $(b,sim)).")

let obs_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "obs-dir" ] ~docv:"DIR"
        ~doc:
          "Attach the observability plane and export its artifacts under \
           $(docv): $(b,obs.jsonl) (all instruments), $(b,obs_det.jsonl) \
           (deterministic tier only — byte-identical across sim/poll and \
           domain counts), $(b,sampler.jsonl) (GC/RSS/poll time series) and \
           $(b,trace.json) (Chrome trace_event timeline for \
           chrome://tracing or Perfetto). sim and poll backends only.")

let obs_socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "obs-socket" ] ~docv:"PATH"
        ~doc:
          "Serve a live plain-text stats dump on a Unix-domain socket at \
           $(docv), polled from inside the event loop ($(b,poll) backend \
           only). Read it with $(b,ca_cli obs --socket) $(docv).")

let engine_cmd =
  let doc = "multiplex many concurrent CA sessions over one transport" in
  Cmd.v (Cmd.info "engine" ~doc)
    Term.(
      const engine_scenario $ n_arg $ t_arg $ sessions_arg $ spacing_arg
      $ backend_arg $ adversary_arg $ attack_arg $ ba_arg $ bits_arg
      $ seed_arg $ verbose_arg $ domains_arg $ telemetry_file_arg
      $ obs_dir_arg $ obs_socket_arg)

let obs_fetch_socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Fetch a live stats dump from the endpoint at $(docv).")

let obs_check_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "check" ] ~docv:"DIR"
        ~doc:
          "Schema-check the obs artifacts exported under $(docv) by a \
           previous $(b,engine --obs-dir) run.")

let obs_cmd =
  let doc = "read or validate the runtime observability plane" in
  Cmd.v (Cmd.info "obs" ~doc)
    Term.(const obs_client $ obs_fetch_socket_arg $ obs_check_arg)

let top_arg =
  Arg.(
    value & opt int 10
    & info [ "top" ] ~docv:"K" ~doc:"Rows in the per-label cost table.")

let jsonl_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "jsonl" ] ~docv:"FILE" ~doc:"Also write the raw telemetry as JSONL.")

let telemetry_cmd =
  let doc =
    "run a scenario with telemetry and render spans, heatmap and convergence"
  in
  Cmd.v (Cmd.info "telemetry" ~doc)
    Term.(
      const telemetry_scenario $ n_arg $ t_arg $ protocol_arg $ workload_arg
      $ adversary_arg $ attack_arg $ bits_arg $ aa_rounds_arg $ seed_arg
      $ top_arg $ domains_arg $ jsonl_arg)

let () =
  let doc = "communication-optimal convex agreement (PODC 2024) scenario runner" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "convex-agreement" ~doc)
          [ run_cmd; trace_cmd; engine_cmd; telemetry_cmd; obs_cmd; list_cmd ]))
