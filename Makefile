# Tier-1 gate: everything CI (and the ROADMAP) requires must pass here.
#
#   make check     build + format check + full test suite, in one shot
#
# The format check degrades gracefully: ocamlformat is optional in the
# toolchain image, and `dune build @fmt` fails hard when the binary is
# missing, so we only run it when available.

DUNE ?= dune

.PHONY: all build fmt test check bench bench-smoke soak-smoke validate-bench clean

all: build

build:
	$(DUNE) build

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		$(DUNE) build @fmt; \
	else \
		echo "[fmt] ocamlformat not installed; skipping format check"; \
	fi

test:
	$(DUNE) runtest

# The smoke pass runs every bench experiment at tiny parameters (no JSON
# writes) so the harness itself is covered by the tier-1 gate; --domains 2
# exercises the multicore fan-out and its bit-identity gates on every host.
bench-smoke:
	$(DUNE) exec bench/main.exe -- --smoke --domains 2

# Every committed BENCH_*.json ledger must parse and have the harness's
# shape (meta.experiment + non-empty rows).
validate-bench:
	$(DUNE) exec bench/validate_bench.exe -- BENCH_*.json

# ~10 s of the duration-based soak on the event-driven poll backend: mixed
# adversarial workloads, staggered admission, Definition 1 checked per
# session, peak RSS asserted after every wave.
soak-smoke:
	$(DUNE) exec bin/soak.exe -- --smoke

check: build fmt test bench-smoke soak-smoke validate-bench
	@echo "[check] tier-1 gate passed"

# Full benchmark run, built with the optimizing release profile (see the
# root dune file); regenerates the BENCH_*.json ledgers.
bench:
	$(DUNE) exec --profile release bench/main.exe

clean:
	$(DUNE) clean
