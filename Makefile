# Tier-1 gate: everything CI (and the ROADMAP) requires must pass here.
#
#   make check     build + format check + full test suite, in one shot
#
# The format check degrades gracefully: ocamlformat is optional in the
# toolchain image, and `dune build @fmt` fails hard when the binary is
# missing, so we only run it when available.

DUNE ?= dune

.PHONY: all build fmt test check bench bench-smoke soak-smoke obs-smoke soak-long validate-bench clean

all: build

build:
	$(DUNE) build

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		$(DUNE) build @fmt; \
	else \
		echo "[fmt] ocamlformat not installed; skipping format check"; \
	fi

test:
	$(DUNE) runtest

# The smoke pass runs every bench experiment at tiny parameters (no JSON
# writes) so the harness itself is covered by the tier-1 gate; --domains 2
# exercises the multicore fan-out and its bit-identity gates on every host.
bench-smoke:
	$(DUNE) exec bench/main.exe -- --smoke --domains 2

# Every committed BENCH_*.json ledger must parse and have the harness's
# shape (meta.experiment + non-empty rows).
validate-bench:
	$(DUNE) exec bench/validate_bench.exe -- BENCH_*.json

# ~10 s of the duration-based soak on the event-driven poll backend: mixed
# adversarial workloads, staggered admission, Definition 1 checked per
# session, peak RSS asserted after every wave.
soak-smoke:
	$(DUNE) exec bin/soak.exe -- --smoke

# Observability round-trip on a real K=8 poll-backend run: export the
# registry JSONL (full + deterministic tier), the sampler time series and
# the Chrome trace, then schema-validate all four with `ca_cli obs --check`.
obs-smoke:
	rm -rf /tmp/ca-obs-smoke
	$(DUNE) exec bin/ca_cli.exe -- engine --backend poll --sessions 8 \
		--spacing 2 -n 7 -t 2 --adversary equivocate --obs-dir /tmp/ca-obs-smoke
	$(DUNE) exec bin/ca_cli.exe -- obs --check /tmp/ca-obs-smoke

check: build fmt test bench-smoke soak-smoke obs-smoke validate-bench
	@echo "[check] tier-1 gate passed"

# Long soak: >= 30 min of the duration-based poll soak with per-wave obs
# health snapshots, a live stats socket (read it any time with
# `ca_cli obs --socket /tmp/ca-soak.sock`), and a hard peak-RSS ceiling
# asserted after every wave. Not part of `check` — run it before releases
# or when hunting leaks.
soak-long:
	$(DUNE) exec --profile release bin/soak.exe -- --duration 1800 \
		--backend poll --max-rss-mb 2048 --obs-socket /tmp/ca-soak.sock

# Full benchmark run, built with the optimizing release profile (see the
# root dune file); regenerates the BENCH_*.json ledgers.
bench:
	$(DUNE) exec --profile release bench/main.exe

clean:
	$(DUNE) clean
