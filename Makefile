# Tier-1 gate: everything CI (and the ROADMAP) requires must pass here.
#
#   make check     build + format check + full test suite, in one shot
#
# The format check degrades gracefully: ocamlformat is optional in the
# toolchain image, and `dune build @fmt` fails hard when the binary is
# missing, so we only run it when available.

DUNE ?= dune

.PHONY: all build fmt test check bench clean

all: build

build:
	$(DUNE) build

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		$(DUNE) build @fmt; \
	else \
		echo "[fmt] ocamlformat not installed; skipping format check"; \
	fi

test:
	$(DUNE) runtest

check: build fmt test
	@echo "[check] tier-1 gate passed"

bench:
	$(DUNE) exec bench/main.exe

clean:
	$(DUNE) clean
